package stats

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("Table 1: traffic", "bench", "bytes", "pct")
	if err := tb.AddRow("compress", "1024", "27%"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRowf("go", 2048, 31.5); err != nil {
		t.Fatal(err)
	}
	// A short row is fine: missing cells render empty.
	if err := tb.AddRow("li"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	want := [][]string{
		{"bench", "bytes", "pct"},
		{"compress", "1024", "27%"},
		{"go", "2048", "31.50"},
		{"li", "", ""},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CSV round trip:\ngot  %v\nwant %v", got, want)
	}
	if strings.Contains(buf.String(), "Table 1") {
		t.Error("CSV output must not contain the title line")
	}
}

func TestTableAddRowOverflow(t *testing.T) {
	tb := NewTable("t", "a", "b")
	if err := tb.AddRow("1", "2"); err != nil {
		t.Fatalf("exact-width row: %v", err)
	}
	err := tb.AddRow("1", "2", "3")
	if err == nil {
		t.Fatal("overflowing row returned nil error")
	}
	if tb.Err() == nil {
		t.Fatal("overflow not recorded on the table")
	}
	// The stored row is truncated so text rendering stays aligned.
	if !strings.Contains(tb.String(), "1  2") {
		t.Errorf("render broke after overflow:\n%s", tb.String())
	}
	// CSV refuses to serialize a silently truncated dataset.
	if err := tb.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteCSV succeeded despite recorded overflow")
	}
	// The first error sticks even after further bad rows.
	first := tb.Err()
	tb.AddRow("1", "2", "3", "4")
	if tb.Err() != first {
		t.Error("Err() should keep the first mismatch")
	}
}

func TestCounterJSON(t *testing.T) {
	var c Counter
	c.Add(42)
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "42" {
		t.Fatalf("Counter marshals as %s, want 42", b)
	}
	var back Counter
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Value() != 42 {
		t.Fatalf("round trip = %d, want 42", back.Value())
	}
	// Counters embedded in structs (the Result types) serialize as bare
	// numbers too.
	s := struct {
		Hits Counter `json:"hits"`
	}{}
	s.Hits.Inc()
	b, err = json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"hits":1}` {
		t.Fatalf("embedded counter marshals as %s", b)
	}
}
