package trace

import (
	"github.com/wisc-arch/datascalar/internal/cache"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/stats"
)

// DatathreadAnalyzer reproduces the paper's Table 2 approximation of
// datathread lengths: the stream of cache misses is walked in order,
// counting consecutive references local to one node. A thread begins at
// the first reference to a communicated datum owned by some node and ends
// (restarting the count) at the next reference to communicated data owned
// by a *different* node. References to replicated pages extend the
// current thread — high replicated-reference counts lengthen threads —
// and are additionally tracked as their own run statistic (the table's
// right-most column).
//
// Four means are reported, as in Table 2: over all misses, over
// instruction misses only, over data misses only, and the mean contiguous
// run length of replicated-page references.
type DatathreadAnalyzer struct {
	pt *mem.PageTable

	all, text, data threadTracker
	replRuns        replTracker
}

// threadTracker counts one class's thread lengths.
type threadTracker struct {
	owner   int // current thread's node, -1 before the first communicated ref
	length  uint64
	started bool
	threads stats.Mean
}

func (t *threadTracker) observe(owner int, replicated bool) {
	if replicated {
		if t.started {
			t.length++
		}
		return
	}
	if !t.started {
		t.owner, t.length, t.started = owner, 1, true
		return
	}
	if owner == t.owner {
		t.length++
		return
	}
	t.threads.Observe(float64(t.length))
	t.owner, t.length = owner, 1
}

func (t *threadTracker) flush() {
	if t.started && t.length > 0 {
		t.threads.Observe(float64(t.length))
		t.length = 0
		t.started = false
	}
}

// replTracker counts contiguous runs of replicated-page references.
type replTracker struct {
	length uint64
	runs   stats.Mean
}

func (t *replTracker) observe(replicated bool) {
	if replicated {
		t.length++
		return
	}
	if t.length > 0 {
		t.runs.Observe(float64(t.length))
		t.length = 0
	}
}

func (t *replTracker) flush() {
	if t.length > 0 {
		t.runs.Observe(float64(t.length))
		t.length = 0
	}
}

// NewDatathreadAnalyzer builds an analyzer over the given partition.
func NewDatathreadAnalyzer(pt *mem.PageTable) *DatathreadAnalyzer {
	return &DatathreadAnalyzer{pt: pt}
}

// Observe feeds one cache miss (post-filter reference).
func (a *DatathreadAnalyzer) Observe(addr uint64, instr bool) {
	e := a.pt.MustLookup(addr)
	repl := e.Kind == mem.Replicated
	a.all.observe(e.Owner, repl)
	if instr {
		a.text.observe(e.Owner, repl)
	} else {
		a.data.observe(e.Owner, repl)
	}
	a.replRuns.observe(repl)
}

// DatathreadResult holds Table 2's four mean columns.
type DatathreadResult struct {
	AllMean  float64 // datathread length over all misses
	TextMean float64 // instruction misses only
	DataMean float64 // data misses only
	ReplMean float64 // contiguous replicated-reference run length
	Threads  uint64  // completed threads over all misses
}

// Finish flushes in-progress runs and returns the means.
func (a *DatathreadAnalyzer) Finish() DatathreadResult {
	a.all.flush()
	a.text.flush()
	a.data.flush()
	a.replRuns.flush()
	return DatathreadResult{
		AllMean:  a.all.threads.Value(),
		TextMean: a.text.threads.Value(),
		DataMean: a.data.threads.Value(),
		ReplMean: a.replRuns.runs.Value(),
		Threads:  a.all.threads.Count(),
	}
}

// MissFilter pushes a reference stream through split L1 instruction and
// data caches and forwards only the misses, the stream both Table 2 and
// the miss-level locality studies operate on.
type MissFilter struct {
	icache *cache.Cache
	dcache *cache.Cache
}

// NewMissFilter builds split caches with the given geometries.
func NewMissFilter(iCfg, dCfg cache.Config) *MissFilter {
	return &MissFilter{icache: cache.New(iCfg), dcache: cache.New(dCfg)}
}

// DefaultMissFilter returns the paper's split 16 KB caches (two-way for
// the Table 1/2 studies).
func DefaultMissFilter() *MissFilter {
	mk := func(name string) cache.Config {
		return cache.Config{
			Name:      name,
			SizeBytes: 16 * 1024,
			LineBytes: 32,
			Assoc:     2,
			Write:     cache.WriteBack,
			Alloc:     cache.WriteAllocate,
		}
	}
	return &MissFilter{icache: cache.New(mk("il1")), dcache: cache.New(mk("dl1"))}
}

// Observe feeds one reference; it reports whether the reference missed
// (and thus reaches main memory).
func (f *MissFilter) Observe(r Ref) bool {
	if r.Instr {
		return !f.icache.Access(r.Addr, false).Hit
	}
	return !f.dcache.Access(r.Addr, r.Store).Hit
}
