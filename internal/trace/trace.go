// Package trace implements the paper's trace-driven analyses: the ESP
// off-chip traffic reduction study (Table 1) and the datathread-length
// approximation (Table 2). Both consume the memory reference stream of a
// program run on the functional emulator, filtered through split L1
// caches exactly as the paper's cache simulations were.
package trace

import (
	"fmt"

	"github.com/wisc-arch/datascalar/internal/emu"
	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/prog"
)

// Ref is one memory reference: an instruction fetch or a data access.
type Ref struct {
	Addr  uint64
	Size  int
	Store bool
	Instr bool // instruction fetch
}

// ForEachRef executes program p (bounded by maxInstr; 0 = to completion)
// and streams its memory references to fn in execution order: each
// instruction's fetch (when includeInstr is set) followed by its data
// access, if any. Returning an error from fn aborts the walk.
func ForEachRef(p *prog.Program, maxInstr uint64, includeInstr bool, fn func(Ref) error) error {
	return ForEachRefFrom(p, 0, maxInstr, includeInstr, fn)
}

// ForEachRefFrom is ForEachRef starting at startPC: the program is
// executed silently up to that PC first (0 = start immediately), so
// analyses measure steady-state behaviour rather than initialization —
// the same fast-forward discipline the timing harnesses use.
func ForEachRefFrom(p *prog.Program, startPC, maxInstr uint64, includeInstr bool, fn func(Ref) error) error {
	m, err := emu.New(p)
	if err != nil {
		return err
	}
	if startPC != 0 {
		if _, ok, err := m.RunUntilPC(startPC, 200_000_000); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("trace: start pc 0x%x never reached", startPC)
		}
	}
	start := m.InstrCount()
	for !m.Halted() {
		if maxInstr != 0 && m.InstrCount()-start >= maxInstr {
			break
		}
		d, err := m.Step()
		if err != nil {
			if err == emu.ErrHalted {
				break
			}
			return err
		}
		if includeInstr {
			if err := fn(Ref{Addr: d.PC, Size: isa.InstrBytes, Instr: true}); err != nil {
				return err
			}
		}
		if d.Instr.Op.IsMem() {
			if err := fn(Ref{Addr: d.EA, Size: d.Instr.Op.MemBytes(), Store: d.Instr.Op.IsStore()}); err != nil {
				return err
			}
		}
	}
	return nil
}

// CollectRefs is ForEachRef into a slice, for small traces in tests.
func CollectRefs(p *prog.Program, maxInstr uint64, includeInstr bool) ([]Ref, error) {
	var out []Ref
	err := ForEachRef(p, maxInstr, includeInstr, func(r Ref) error {
		out = append(out, r)
		return nil
	})
	return out, err
}

// ProfilePages counts page accesses over a program run (instruction and
// data references), the input to the paper's replication selection.
func ProfilePages(p *prog.Program, maxInstr uint64, observe func(addr uint64)) error {
	return ProfilePagesFrom(p, 0, maxInstr, observe)
}

// ProfilePagesFrom is ProfilePages starting at startPC.
func ProfilePagesFrom(p *prog.Program, startPC, maxInstr uint64, observe func(addr uint64)) error {
	return ForEachRefFrom(p, startPC, maxInstr, true, func(r Ref) error {
		observe(r.Addr)
		return nil
	})
}

func validateRef(r Ref) error {
	if r.Size <= 0 {
		return fmt.Errorf("trace: reference with non-positive size %d", r.Size)
	}
	return nil
}
