package trace

import (
	"testing"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/cache"
	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/prog"
)

const tinyLoop = `
        .data
arr:    .space 65536          # 8 pages
        .text
        la   r1, arr
        li   r2, 8192
loop:   ld   r3, 0(r1)
        sd   r3, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, loop
        halt
`

func assembleT(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestForEachRefOrderAndContent(t *testing.T) {
	p := assembleT(t, `
        .data
x:      .word 1
        .text
        la   r1, x
        ld   r2, 0(r1)
        sd   r2, 8(r1)
        halt
`)
	refs, err := CollectRefs(p, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	// 4 instructions + 1 load + 1 store = 6 refs.
	if len(refs) != 6 {
		t.Fatalf("refs = %d, want 6", len(refs))
	}
	if !refs[0].Instr || refs[0].Addr != prog.TextBase {
		t.Fatalf("first ref = %+v", refs[0])
	}
	// Stream: fetch0, fetch1, load, fetch2, store, fetch3.
	if refs[2].Instr || refs[2].Store || refs[2].Addr != p.Labels["x"] {
		t.Fatalf("load ref = %+v", refs[2])
	}
	if !refs[4].Store || refs[4].Addr != p.Labels["x"]+8 {
		t.Fatalf("store ref = %+v", refs[4])
	}
	if refs[2].Size != isa.OpLD.MemBytes() {
		t.Fatalf("load size = %d", refs[2].Size)
	}
}

func TestForEachRefDataOnly(t *testing.T) {
	p := assembleT(t, "\t.data\nx: .word 1\n\t.text\n\tla r1, x\n\tld r2, 0(r1)\n\thalt\n")
	refs, err := CollectRefs(p, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0].Instr {
		t.Fatalf("refs = %+v", refs)
	}
}

func TestForEachRefLimit(t *testing.T) {
	p := assembleT(t, tinyLoop)
	n := 0
	if err := ForEachRef(p, 100, true, func(Ref) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 || n > 300 {
		t.Fatalf("limited walk produced %d refs", n)
	}
}

func TestTrafficAnalyzerAccounting(t *testing.T) {
	cfg := TrafficConfig{L1: cache.Config{
		Name: "t", SizeBytes: 256, LineBytes: 32, Assoc: 1,
		Write: cache.WriteBack, Alloc: cache.WriteAllocate,
	}}
	a := NewTrafficAnalyzer(cfg)

	// One clean miss: conventional = 8 + 40; ESP = 40; transactions 2 vs 1.
	if err := a.Observe(Ref{Addr: 0, Size: 8}); err != nil {
		t.Fatal(err)
	}
	// Dirty it, then evict with a conflicting miss: adds writeback 40B.
	if err := a.Observe(Ref{Addr: 8, Size: 8, Store: true}); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(Ref{Addr: 256, Size: 8}); err != nil {
		t.Fatal(err)
	}
	res := a.Finish()
	if res.Misses != 2 {
		t.Fatalf("misses = %d", res.Misses)
	}
	if res.Writebacks != 1 {
		t.Fatalf("writebacks = %d", res.Writebacks)
	}
	wantConv := uint64(48 + 48 + 40) // two miss round-trips + one writeback
	if res.ConventionalBytes != wantConv {
		t.Fatalf("conventional bytes = %d, want %d", res.ConventionalBytes, wantConv)
	}
	if res.ESPBytes != 80 {
		t.Fatalf("esp bytes = %d, want 80", res.ESPBytes)
	}
	if res.ConventionalTransactions != 5 || res.ESPTransactions != 2 {
		t.Fatalf("transactions = %d vs %d", res.ConventionalTransactions, res.ESPTransactions)
	}
	if res.TrafficEliminated() <= 0 || res.TransactionsEliminated() < 0.5 {
		t.Fatalf("eliminated: %.2f bytes, %.2f transactions",
			res.TrafficEliminated(), res.TransactionsEliminated())
	}
}

func TestTrafficFinishFlushesDirty(t *testing.T) {
	a := NewTrafficAnalyzer(DefaultTrafficConfig())
	a.Observe(Ref{Addr: 0, Size: 8, Store: true})
	res := a.Finish()
	if res.Writebacks != 1 {
		t.Fatalf("end-of-run writeback missing: %+v", res)
	}
}

func TestTrafficTransactionsAtLeastHalfOnRealKernel(t *testing.T) {
	p := assembleT(t, tinyLoop)
	a := NewTrafficAnalyzer(DefaultTrafficConfig())
	if err := ForEachRef(p, 0, false, a.Observe); err != nil {
		t.Fatal(err)
	}
	res := a.Finish()
	if res.Misses == 0 {
		t.Fatal("kernel produced no misses")
	}
	if got := res.TransactionsEliminated(); got < 0.5 {
		t.Fatalf("transactions eliminated = %.2f, want >= 0.5 (no requests under ESP)", got)
	}
	// The store sweep dirties every line, so byte elimination should be
	// substantial (upper Table 1 range).
	if got := res.TrafficEliminated(); got < 0.3 {
		t.Fatalf("traffic eliminated = %.2f, want >= 0.3 on a dirty sweep", got)
	}
}

func TestTrafficRejectsBadRef(t *testing.T) {
	a := NewTrafficAnalyzer(DefaultTrafficConfig())
	if err := a.Observe(Ref{Addr: 0, Size: 0}); err == nil {
		t.Fatal("zero-size ref accepted")
	}
}

func buildPT(t *testing.T, nodes int, repl map[uint64]bool) *mem.PageTable {
	t.Helper()
	pt := mem.NewPageTable(nodes)
	for pg := uint64(0); pg < 16; pg++ {
		if repl[pg] {
			pt.SetReplicated(pg)
		} else {
			pt.SetOwner(pg, int(pg)%nodes)
		}
	}
	return pt
}

func TestDatathreadBasicRuns(t *testing.T) {
	pt := buildPT(t, 2, nil) // pages 0,2,4.. node0; 1,3,5.. node1
	a := NewDatathreadAnalyzer(pt)
	page := uint64(prog.PageSize)
	// 3 refs on node0's page 0, then 2 on node1's page 1, then 1 on page 2.
	seq := []uint64{0, 8, 16, page, page + 8, 2 * page}
	for _, addr := range seq {
		a.Observe(addr, false)
	}
	r := a.Finish()
	// Threads: 3, 2, 1 -> mean 2.
	if r.AllMean != 2 {
		t.Fatalf("all mean = %v, want 2", r.AllMean)
	}
	if r.Threads != 3 {
		t.Fatalf("threads = %d", r.Threads)
	}
	if r.DataMean != 2 {
		t.Fatalf("data mean = %v", r.DataMean)
	}
	if r.TextMean != 0 {
		t.Fatalf("text mean = %v (no instruction refs)", r.TextMean)
	}
}

func TestDatathreadReplicatedExtends(t *testing.T) {
	repl := map[uint64]bool{1: true}
	pt := buildPT(t, 2, repl)
	a := NewDatathreadAnalyzer(pt)
	page := uint64(prog.PageSize)
	// node0 ref, replicated ref (extends), node0 ref, then node1 ref.
	for _, addr := range []uint64{0, page, 8, 3 * page} {
		a.Observe(addr, false)
	}
	r := a.Finish()
	// Threads: [0, page, 8] = length 3, then [3*page] = 1 -> mean 2.
	if r.AllMean != 2 {
		t.Fatalf("all mean = %v, want 2 (replicated must extend)", r.AllMean)
	}
	if r.ReplMean != 1 {
		t.Fatalf("replicated run mean = %v, want 1", r.ReplMean)
	}
}

func TestDatathreadLeadingReplicatedIgnored(t *testing.T) {
	repl := map[uint64]bool{0: true}
	pt := buildPT(t, 2, repl)
	a := NewDatathreadAnalyzer(pt)
	// Replicated refs before any communicated ref don't start a thread.
	a.Observe(0, false)
	a.Observe(8, false)
	a.Observe(uint64(prog.PageSize), false) // node1
	r := a.Finish()
	if r.AllMean != 1 || r.Threads != 1 {
		t.Fatalf("result = %+v", r)
	}
	if r.ReplMean != 2 {
		t.Fatalf("repl run mean = %v, want 2", r.ReplMean)
	}
}

func TestDatathreadSeparatesTextData(t *testing.T) {
	pt := buildPT(t, 2, nil)
	a := NewDatathreadAnalyzer(pt)
	page := uint64(prog.PageSize)
	a.Observe(0, true)       // text ref on node0
	a.Observe(8, true)       // text ref on node0
	a.Observe(page, false)   // data ref on node1
	a.Observe(page+8, false) // data ref on node1
	a.Observe(0, true)       // text on node0 again
	r := a.Finish()
	// The text sub-stream sees 0, 8, 0 — all node0 — so one thread of 3.
	if r.TextMean != 3 {
		t.Fatalf("text mean = %v", r.TextMean)
	}
	if r.DataMean != 2 {
		t.Fatalf("data mean = %v", r.DataMean)
	}
	// Combined stream: 2 (text) + 2 (data) + 1 (text) -> mean 5/3.
	if r.AllMean < 1.6 || r.AllMean > 1.7 {
		t.Fatalf("all mean = %v", r.AllMean)
	}
}

func TestMissFilterSeparatesStreams(t *testing.T) {
	f := DefaultMissFilter()
	// First touch misses in both caches independently.
	if !f.Observe(Ref{Addr: 0x1000, Size: 8, Instr: true}) {
		t.Fatal("cold instruction fetch hit")
	}
	if !f.Observe(Ref{Addr: 0x1000, Size: 8}) {
		t.Fatal("cold data access hit (shared with icache?)")
	}
	if f.Observe(Ref{Addr: 0x1000, Size: 8, Instr: true}) {
		t.Fatal("warm fetch missed")
	}
	if f.Observe(Ref{Addr: 0x1008, Size: 8}) {
		t.Fatal("same-line data access missed")
	}
}

func TestEndToEndDatathreads(t *testing.T) {
	// Real kernel through cache filter into the analyzer: a sequential
	// sweep over 8 pages distributed round-robin across 4 nodes in
	// 1-page blocks gives data threads of about one page of misses
	// (8192/32 = 256 misses per page).
	p := assembleT(t, tinyLoop)
	pt, err := mem.Partition{NumNodes: 4, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	filter := DefaultMissFilter()
	an := NewDatathreadAnalyzer(pt)
	err = ForEachRef(p, 0, true, func(r Ref) error {
		if filter.Observe(r) {
			an.Observe(r.Addr, r.Instr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res := an.Finish()
	if res.DataMean < 200 || res.DataMean > 300 {
		t.Fatalf("sequential sweep data datathread mean = %.1f, want ~256", res.DataMean)
	}
}

func TestProfilePages(t *testing.T) {
	p := assembleT(t, tinyLoop)
	pr := mem.NewProfiler()
	if err := ProfilePages(p, 0, pr.Observe); err != nil {
		t.Fatal(err)
	}
	order := pr.PagesByHeat()
	if len(order) == 0 {
		t.Fatal("no pages profiled")
	}
	// The hottest page must be the text page (every instruction fetch).
	if prog.SegmentOf(order[0]*prog.PageSize) != prog.SegText {
		t.Fatalf("hottest page is %v, want text", prog.SegmentOf(order[0]*prog.PageSize))
	}
}
