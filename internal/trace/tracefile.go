package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/wisc-arch/datascalar/internal/prog"
)

// Binary trace files let reference streams be recorded once and replayed
// through the analyses (Tables 1 and 2, or custom studies) without
// re-running the emulator — the workflow trace-driven simulators of the
// paper's era used.
//
// Format:
//
//	magic   [4]byte "DSTR"
//	version uint8   (1)
//	records: for each reference,
//	    flags   uint8: bit0 store, bit1 instr, bits 2-3 size code
//	            (0 -> 1 byte, 1 -> 4, 2 -> 8)
//	    delta   zig-zag varint of (addr - prevAddr)
//
// Delta encoding keeps sequential streams near one byte per reference.

var traceMagic = [4]byte{'D', 'S', 'T', 'R'}

// traceVersion is the current file version.
const traceVersion = 1

func sizeCode(size int) (byte, error) {
	switch size {
	case 1:
		return 0, nil
	case 4:
		return 1, nil
	case 8:
		return 2, nil
	}
	return 0, fmt.Errorf("trace: unsupported access size %d", size)
}

func sizeFromCode(code byte) (int, error) {
	switch code {
	case 0:
		return 1, nil
	case 1:
		return 4, nil
	case 2:
		return 8, nil
	}
	return 0, fmt.Errorf("trace: bad size code %d", code)
}

// Writer streams references into a trace file.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	count    uint64
}

// NewWriter writes a trace header to w and returns the record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one reference.
func (t *Writer) Write(r Ref) error {
	code, err := sizeCode(r.Size)
	if err != nil {
		return err
	}
	flags := code << 2
	if r.Store {
		flags |= 1
	}
	if r.Instr {
		flags |= 2
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	delta := int64(r.Addr - t.prevAddr)
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], delta)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.prevAddr = r.Addr
	t.count++
	return nil
}

// Count returns the number of references written.
func (t *Writer) Count() uint64 { return t.count }

// Flush drains buffered records to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader streams references out of a trace file.
type Reader struct {
	r        *bufio.Reader
	prevAddr uint64
}

// NewReader validates the header of r and returns the record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	return &Reader{r: br}, nil
}

// Read returns the next reference; io.EOF signals a clean end of trace.
func (t *Reader) Read() (Ref, error) {
	flags, err := t.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Ref{}, io.EOF
		}
		return Ref{}, fmt.Errorf("trace: reading flags: %w", err)
	}
	size, err := sizeFromCode(flags >> 2)
	if err != nil {
		return Ref{}, err
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		return Ref{}, fmt.Errorf("trace: reading delta: %w", err)
	}
	t.prevAddr += uint64(delta)
	return Ref{
		Addr:  t.prevAddr,
		Size:  size,
		Store: flags&1 != 0,
		Instr: flags&2 != 0,
	}, nil
}

// ForEach streams every remaining reference to fn.
func (t *Reader) ForEach(fn func(Ref) error) error {
	for {
		r, err := t.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}

// Record executes program p (from startPC, bounded by maxInstr) and
// writes its reference stream to w, returning the reference count.
func Record(w io.Writer, p *prog.Program, startPC, maxInstr uint64, includeInstr bool) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	err = ForEachRefFrom(p, startPC, maxInstr, includeInstr, tw.Write)
	if err != nil {
		return tw.Count(), err
	}
	return tw.Count(), tw.Flush()
}
