package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"github.com/wisc-arch/datascalar/internal/asm"
)

func TestTraceRoundTrip(t *testing.T) {
	refs := []Ref{
		{Addr: 0x1000, Size: 8},
		{Addr: 0x1008, Size: 8, Store: true},
		{Addr: 0x10000, Size: 8, Instr: true},
		{Addr: 0xfff, Size: 1},
		{Addr: 0x20000000, Size: 4, Store: true},
		{Addr: 0x1000, Size: 8}, // backwards delta
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(refs)) {
		t.Fatalf("count = %d", w.Count())
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Ref
	if err := rd.ForEach(func(r Ref) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("read %d refs", len(got))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d: got %+v want %+v", i, got[i], refs[i])
		}
	}
}

func TestTraceRejectsBadInput(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("JUNKxxxx"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("DS"))); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Wrong version.
	if _, err := NewReader(bytes.NewReader([]byte{'D', 'S', 'T', 'R', 99})); err == nil {
		t.Fatal("future version accepted")
	}
	// Bad size code in a record.
	r, err := NewReader(bytes.NewReader([]byte{'D', 'S', 'T', 'R', 1, 0x0c, 0x00}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("bad size code accepted")
	}
	// Truncated varint.
	r, err = NewReader(bytes.NewReader([]byte{'D', 'S', 'T', 'R', 1, 0x08, 0x80}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("truncated delta returned %v", err)
	}
	// Unsupported size at write time.
	w, err := NewWriter(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Ref{Addr: 0, Size: 3}); err == nil {
		t.Fatal("size 3 accepted")
	}
}

func TestRecordAndReplayMatchesLiveRun(t *testing.T) {
	p, err := asm.Assemble("t", tinyLoop)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Record(&buf, p, 0, 100_000, true)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing recorded")
	}

	// A live traffic analysis and a replayed one must agree exactly.
	live := NewTrafficAnalyzer(DefaultTrafficConfig())
	if err := ForEachRef(p, 100_000, true, func(r Ref) error {
		if r.Instr {
			return nil
		}
		return live.Observe(r)
	}); err != nil {
		t.Fatal(err)
	}
	liveRes := live.Finish()

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := NewTrafficAnalyzer(DefaultTrafficConfig())
	if err := rd.ForEach(func(r Ref) error {
		if r.Instr {
			return nil
		}
		return replay.Observe(r)
	}); err != nil {
		t.Fatal(err)
	}
	replayRes := replay.Finish()

	if liveRes != replayRes {
		t.Fatalf("live %+v != replay %+v", liveRes, replayRes)
	}
}

func TestTraceCompression(t *testing.T) {
	// A sequential stream should cost little more than 2 bytes/ref.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := w.Write(Ref{Addr: uint64(0x1000 + i*8), Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if perRef := float64(buf.Len()) / 10000; perRef > 2.5 {
		t.Fatalf("sequential stream costs %.1f bytes/ref", perRef)
	}
}

// Property: arbitrary reference sequences round-trip exactly.
func TestTraceRoundTripQuick(t *testing.T) {
	sizes := []int{1, 4, 8}
	f := func(addrs []uint64, kinds []uint8) bool {
		var refs []Ref
		for i, a := range addrs {
			k := uint8(0)
			if i < len(kinds) {
				k = kinds[i]
			}
			refs = append(refs, Ref{
				Addr:  a,
				Size:  sizes[int(k)%3],
				Store: k&4 != 0,
				Instr: k&8 != 0,
			})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, r := range refs {
			if w.Write(r) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		i := 0
		err = rd.ForEach(func(r Ref) error {
			if r != refs[i] {
				return io.ErrUnexpectedEOF
			}
			i++
			return nil
		})
		return err == nil && i == len(refs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
