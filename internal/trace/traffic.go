package trace

import (
	"github.com/wisc-arch/datascalar/internal/cache"
)

// AddrBytes is the address/tag overhead assumed per off-chip message in
// the traffic accounting (asynchronous ESP broadcasts carry tags too).
const AddrBytes = 8

// TrafficConfig parameterizes the Table 1 analysis. The paper used a
// 16 KB two-way set-associative write-allocate write-back L1 data cache.
type TrafficConfig struct {
	L1 cache.Config
}

// DefaultTrafficConfig returns the paper's Table 1 cache.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{L1: cache.Config{
		Name:      "dl1",
		SizeBytes: 16 * 1024,
		LineBytes: 32,
		Assoc:     2,
		Write:     cache.WriteBack,
		Alloc:     cache.WriteAllocate,
	}}
}

// TrafficResult aggregates the off-chip traffic a miss stream generates
// under a conventional request/response memory system versus ESP.
//
// Conventional accounting, per the paper: every cache miss sends a
// request (address only) and receives a response (address + line); every
// writeback sends address + line. ESP accounting: every miss is served by
// exactly one broadcast (address + line); requests never leave the chip
// and writebacks complete at the owning node, so neither appears.
type TrafficResult struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64

	ConventionalBytes        uint64
	ConventionalTransactions uint64
	ESPBytes                 uint64
	ESPTransactions          uint64
}

// TrafficEliminated returns the fraction of conventional off-chip bytes
// that ESP eliminates (Table 1, top row).
func (t TrafficResult) TrafficEliminated() float64 {
	if t.ConventionalBytes == 0 {
		return 0
	}
	return 1 - float64(t.ESPBytes)/float64(t.ConventionalBytes)
}

// TransactionsEliminated returns the fraction of individual off-chip
// transactions eliminated (Table 1, second row). Because every
// request disappears, this is at least 50% whenever writebacks are rare,
// and more when they are not.
func (t TrafficResult) TransactionsEliminated() float64 {
	if t.ConventionalTransactions == 0 {
		return 0
	}
	return 1 - float64(t.ESPTransactions)/float64(t.ConventionalTransactions)
}

// TrafficAnalyzer filters a reference stream through the configured cache
// and accumulates both traffic accountings.
type TrafficAnalyzer struct {
	cfg TrafficConfig
	l1  *cache.Cache
	res TrafficResult
}

// NewTrafficAnalyzer builds an analyzer.
func NewTrafficAnalyzer(cfg TrafficConfig) *TrafficAnalyzer {
	return &TrafficAnalyzer{cfg: cfg, l1: cache.New(cfg.L1)}
}

// Observe feeds one data reference.
func (a *TrafficAnalyzer) Observe(r Ref) error {
	if err := validateRef(r); err != nil {
		return err
	}
	a.res.Accesses++
	res := a.l1.Access(r.Addr, r.Store)
	if res.Hit {
		return nil
	}
	line := a.cfg.L1.LineBytes
	if r.Store && a.cfg.L1.Alloc == cache.WriteNoAllocate {
		// Store miss without allocation: the word itself goes off-chip
		// conventionally; under ESP it completes at the owner.
		a.res.ConventionalBytes += uint64(AddrBytes + r.Size)
		a.res.ConventionalTransactions++
		return nil
	}
	a.res.Misses++
	// Conventional: request + response.
	a.res.ConventionalBytes += uint64(AddrBytes) + uint64(AddrBytes+line)
	a.res.ConventionalTransactions += 2
	// ESP: one tagged broadcast.
	a.res.ESPBytes += uint64(AddrBytes + line)
	a.res.ESPTransactions++
	if res.Writeback {
		a.res.Writebacks++
		a.res.ConventionalBytes += uint64(AddrBytes + line)
		a.res.ConventionalTransactions++
		// ESP: the writeback completes at the owning node; no traffic.
	}
	return nil
}

// Finish flushes remaining dirty lines (end-of-run writebacks) and
// returns the result.
func (a *TrafficAnalyzer) Finish() TrafficResult {
	for range a.l1.FlushDirty() {
		a.res.Writebacks++
		a.res.ConventionalBytes += uint64(AddrBytes + a.cfg.L1.LineBytes)
		a.res.ConventionalTransactions++
	}
	return a.res
}
