package traditional

import (
	"reflect"
	"testing"

	"github.com/wisc-arch/datascalar/internal/obs"
)

// TestObservationDoesNotPerturb mirrors the core-machine guarantee for
// the baseline: cache and interconnect observation must leave the
// request/response simulation bit-identical.
func TestObservationDoesNotPerturb(t *testing.T) {
	for _, chips := range []int{1, 2, 4} {
		plain := mustRun(t, build(t, streamSum, chips, nil))

		counts := &obs.Counts{}
		trace := obs.NewTrace()
		observed := mustRun(t, build(t, streamSum, chips, func(c *Config) {
			c.Observer = obs.Multi(counts, trace)
		}))

		if !reflect.DeepEqual(plain, observed) {
			t.Fatalf("chips=%d: observation perturbed the run:\nplain:    %+v\nobserved: %+v",
				chips, plain, observed)
		}
		if counts.Total() == 0 {
			t.Fatalf("chips=%d: observer attached but no events emitted", chips)
		}
		if chips >= 2 && counts.ByKind[obs.EvBusDeliver] == 0 {
			t.Fatalf("chips=%d: off-chip traffic emitted no bus.deliver events", chips)
		}
	}
}
