// Package traditional implements the baseline the paper compares against
// (Figure 6a): one CPU chip holding 1/N of the program's memory on-chip,
// with the remaining (N-1)/N in dumb memory chips across the same global
// bus. Off-chip operands cost a request/response round trip plus
// network-interface penalties; dirty victims and store misses to off-chip
// lines generate write traffic — exactly the traffic classes ESP
// eliminates.
//
// For fairness the baseline shares everything else with the DataScalar
// machine: the same out-of-order core, the same L1 geometry with tags
// updated at commit, the same on-chip DRAM timing, and the same bus.
package traditional

import (
	"fmt"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/cache"
	"github.com/wisc-arch/datascalar/internal/emu"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/ooo"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/stats"
)

// cpuChip is bus node 0; memory chips are nodes 1..N-1.
const cpuChip = 0

// Config parameterizes the traditional machine.
type Config struct {
	// Chips is the total chip count: 1 CPU chip plus Chips-1 memory
	// chips. A 4-chip machine holds 1/4 of memory on-chip, matching the
	// paper's "traditional (1/4 on-chip)" configuration.
	Chips int
	Core  ooo.Config
	L1    cache.Config
	DRAM  mem.DRAMConfig // used for both on-chip memory and memory chips
	// Topology selects and parameterizes the interconnect (bus, ring,
	// mesh, or torus), mirroring core.Config.Topology so interconnect
	// comparisons stay apples-to-apples with the DataScalar machine.
	Topology bus.Topology

	// L1HitCycles is the load-to-use latency of an L1 hit.
	L1HitCycles uint64
	// NICycles is the network-interface penalty paid on each chip
	// boundary crossing (the paper charges two cycles at the interface
	// between the local and global buses).
	NICycles uint64

	MaxInstr       uint64
	WatchdogCycles uint64
	// NoCycleSkip forces Run back to pure cycle-by-cycle polling,
	// disabling the next-event scheduler; results are bit-identical
	// either way (see core.Config.NoCycleSkip).
	NoCycleSkip bool
	// FastForwardPC functionally executes the emulator up to this PC
	// before timing begins (0 = none); see core.Config.FastForwardPC.
	FastForwardPC uint64

	// Observer receives cache and interconnect events (fills,
	// writebacks, bus grants/deliveries); nil disables observation at
	// zero cost, and enabling it never perturbs timing. The baseline has
	// no ESP protocol, so it emits no broadcast/BSHR events and no
	// interval samples.
	Observer obs.Observer
}

// DefaultConfig returns the baseline matching core.DefaultConfig(n): same
// core, L1, memory timing, and bus, with 1/n of memory on-chip.
func DefaultConfig(chips int) Config {
	return Config{
		Chips: chips,
		Core:  ooo.DefaultConfig(),
		L1: cache.Config{
			Name:      "dl1",
			SizeBytes: 16 * 1024,
			LineBytes: 32,
			Assoc:     1,
			Write:     cache.WriteBack,
			Alloc:     cache.WriteNoAllocate,
		},
		DRAM:        mem.DefaultDRAM(),
		Topology:    bus.DefaultTopology(),
		L1HitCycles: 1,
		NICycles:    2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Chips <= 0 {
		return fmt.Errorf("traditional: need at least one chip")
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.L1HitCycles == 0 {
		return fmt.Errorf("traditional: L1 hit latency must be positive")
	}
	return nil
}

// Stats counts baseline memory-system events.
type Stats struct {
	IssueHits     stats.Counter
	IssueMisses   stats.Counter
	MergedMisses  stats.Counter
	OnChipMisses  stats.Counter // served by on-chip memory
	OffChipLoads  stats.Counter // request/response round trips
	Requests      stats.Counter // read requests sent
	WritebacksOn  stats.Counter // dirty victims written on-chip
	WritebacksOff stats.Counter // dirty victims sent over the bus
	StoresOn      stats.Counter // store misses completed on-chip
	StoresOff     stats.Counter // store misses sent over the bus
	Fills         stats.Counter
}

// Result summarizes one run.
type Result struct {
	Cycles       uint64
	Instructions uint64
	IPC          float64
	Mem          Stats
	Core         ooo.Stats
	// CPIStack attributes every cycle of the run to exactly one stall
	// bucket; its Total always equals Cycles (see internal/obs). The
	// baseline has no ESP protocol, so esp.serialization stays zero;
	// on-chip DRAM misses charge bshr.local-miss and off-chip round
	// trips charge bshr.remote-owner, making the stack directly
	// comparable against the DataScalar machines' stacks.
	CPIStack obs.CPIStack
	BusStats bus.Stats
}

// missEntry mirrors the DataScalar DCUB entry (see internal/core): it is
// reference-counted by attached in-flight loads and freed when the last
// one commits, so a response can never arrive after its waiters' entry
// was deleted by an earlier commit-time fill.
type missEntry struct {
	line    uint64
	refs    int
	pending bool
	local   bool // served by on-chip memory (cycle attribution)
	dataAt  uint64
	waiting []ooo.LoadToken
}

// Machine is the traditional baseline system.
type Machine struct {
	cfg Config
	pt  *mem.PageTable
	net bus.Network

	emu  *emu.Machine
	core *ooo.Core
	l1   *cache.Cache
	// dram[0] is the on-chip memory; dram[i] is memory chip i.
	dram []*mem.DRAM

	outstanding map[uint64]*missEntry
	// attached records which in-flight loads hold a reference on their
	// line's missEntry.
	attached map[ooo.LoadToken]bool
	now      uint64
	stats    Stats
}

var (
	_ ooo.MemPort        = (*Machine)(nil)
	_ ooo.LoadClassifier = (*Machine)(nil)
)

// NewMachine builds the baseline executing program p with memory placed
// by pt: pages owned by chip 0 are on-chip; pages owned by chips 1..N-1
// live in that memory chip. Replicated pages are treated as on-chip.
func NewMachine(cfg Config, p *prog.Program, pt *mem.PageTable) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pt.NumNodes() != cfg.Chips {
		return nil, fmt.Errorf("traditional: page table built for %d chips, machine has %d",
			pt.NumNodes(), cfg.Chips)
	}
	em, err := emu.New(p)
	if err != nil {
		return nil, err
	}
	if cfg.FastForwardPC != 0 {
		if _, ok, err := em.RunUntilPC(cfg.FastForwardPC, 200_000_000); err != nil {
			return nil, fmt.Errorf("traditional: fast-forward: %w", err)
		} else if !ok {
			return nil, fmt.Errorf("traditional: fast-forward never reached pc 0x%x", cfg.FastForwardPC)
		}
	}
	m := &Machine{
		cfg:         cfg,
		pt:          pt,
		net:         newNet(cfg),
		emu:         em,
		l1:          cache.New(cfg.L1),
		outstanding: make(map[uint64]*missEntry),
		attached:    make(map[ooo.LoadToken]bool),
	}
	if cfg.Observer != nil {
		m.l1.SetObserver(cfg.Observer, cpuChip, &m.now)
		m.net.SetObserver(cfg.Observer)
	}
	for i := 0; i < cfg.Chips; i++ {
		m.dram = append(m.dram, mem.NewDRAM(cfg.DRAM))
	}
	m.core = ooo.New(cfg.Core, ooo.NewEmuSource(em, cfg.MaxInstr), m)
	return m, nil
}

// Emu returns the functional emulator (for result checks).
func (m *Machine) Emu() *emu.Machine { return m.emu }

// Network returns the interconnect (for stats inspection).
func (m *Machine) Network() bus.Network { return m.net }

func newNet(cfg Config) bus.Network {
	return cfg.Topology.Build(cfg.Chips)
}

// homeChip returns the chip holding addr's page.
func (m *Machine) homeChip(addr uint64) int {
	e := m.pt.MustLookup(addr)
	if e.Kind == mem.Replicated {
		return cpuChip
	}
	return e.Owner
}

// IssueLoad implements ooo.MemPort.
func (m *Machine) IssueLoad(now uint64, tok ooo.LoadToken, addr uint64, size int) (uint64, bool) {
	line := m.l1.LineAddr(addr)
	if e, ok := m.outstanding[line]; ok {
		m.stats.IssueMisses.Inc()
		m.stats.MergedMisses.Inc()
		e.refs++
		m.attached[tok] = true
		if e.pending {
			e.waiting = append(e.waiting, tok)
			return 0, true
		}
		return maxU64(now+1, e.dataAt), false
	}
	if m.l1.Probe(addr) {
		m.stats.IssueHits.Inc()
		return now + m.cfg.L1HitCycles, false
	}
	m.stats.IssueMisses.Inc()

	e := &missEntry{line: line, refs: 1}
	m.outstanding[line] = e
	m.attached[tok] = true

	home := m.homeChip(addr)
	if home == cpuChip {
		m.stats.OnChipMisses.Inc()
		e.local = true
		e.dataAt = m.dram[cpuChip].Access(now+m.cfg.L1HitCycles, line)
		return e.dataAt, false
	}

	// Off-chip: request crosses the NI, the bus carries it to the memory
	// chip, the response carries the line back.
	m.stats.OffChipLoads.Inc()
	m.stats.Requests.Inc()
	e.pending = true
	e.waiting = append(e.waiting, tok)
	m.net.Enqueue(bus.Message{
		Kind:    bus.Request,
		Src:     cpuChip,
		Dst:     home,
		Addr:    line,
		ReadyAt: now + m.cfg.L1HitCycles + m.cfg.NICycles,
	})
	return 0, true
}

// CommitLoad implements ooo.MemPort: commit-time tag update. The baseline
// needs no correspondence repair (there are no peers), but shares the
// commit-time update discipline for fairness, as the paper's comparison
// does.
func (m *Machine) CommitLoad(now uint64, tok ooo.LoadToken, addr uint64, size int) {
	line := m.l1.LineAddr(addr)
	if m.l1.Probe(addr) {
		m.l1.Touch(addr, false)
		m.release(tok, line)
		return
	}
	res := m.l1.Fill(addr, false)
	m.stats.Fills.Inc()
	if res.Writeback {
		m.disposeWriteback(now, res.WritebackAddr)
	}
	m.release(tok, line)
}

// release drops the committing load's reference on its line's missEntry,
// freeing the entry when the last attached load commits.
func (m *Machine) release(tok ooo.LoadToken, line uint64) {
	if !m.attached[tok] {
		return
	}
	delete(m.attached, tok)
	if e, ok := m.outstanding[line]; ok {
		e.refs--
		if e.refs <= 0 {
			delete(m.outstanding, line)
		}
	}
}

// ClassifyLoad implements ooo.LoadClassifier: it names the stall bucket
// charged while the oldest instruction in the window is an in-flight
// load. The answer is a pure function of frozen machine state plus the
// interconnect's phase query, both of which are constant over any
// stretch the cycle skipper can jump, so attribution is bit-identical
// with and without skipping.
func (m *Machine) ClassifyLoad(now uint64, tok ooo.LoadToken, addr uint64) obs.StallKind {
	e, ok := m.outstanding[m.l1.LineAddr(addr)]
	if !ok {
		// L1 hit still in its load-to-use latency.
		return obs.StallExec
	}
	if !e.pending {
		// Latency is known: an on-chip DRAM access, or an off-chip line
		// that already arrived and is crossing the network interface.
		if e.local {
			return obs.StallMemLocal
		}
		return obs.StallMemRemote
	}
	// Round trip in progress. Waiting behind unrelated traffic is
	// contention; everything else (request/response in flight, memory
	// chip's DRAM access) is the intrinsic remote-access cost.
	if m.net.DataPhase(e.line, cpuChip, now) == bus.PhaseBlocked {
		return obs.StallNetContention
	}
	return obs.StallMemRemote
}

// CommitStore implements ooo.MemPort.
func (m *Machine) CommitStore(now uint64, addr uint64, size int) {
	if m.l1.Touch(addr, true) {
		return
	}
	// Write-no-allocate: the store goes to its home memory.
	home := m.homeChip(addr)
	if home == cpuChip {
		m.stats.StoresOn.Inc()
		m.dram[cpuChip].Access(now, m.l1.LineAddr(addr))
		return
	}
	m.stats.StoresOff.Inc()
	m.net.Enqueue(bus.Message{
		Kind:         bus.Request, // write: carries payload, expects no reply
		Src:          cpuChip,
		Dst:          home,
		Addr:         addr,
		PayloadBytes: size,
		ReadyAt:      now + m.cfg.NICycles,
	})
}

func (m *Machine) disposeWriteback(now uint64, lineAddr uint64) {
	home := m.homeChip(lineAddr)
	if home == cpuChip {
		m.stats.WritebacksOn.Inc()
		m.dram[cpuChip].Access(now, lineAddr)
		return
	}
	m.stats.WritebacksOff.Inc()
	m.net.Enqueue(bus.Message{
		Kind:         bus.Request,
		Src:          cpuChip,
		Dst:          home,
		Addr:         lineAddr,
		PayloadBytes: m.cfg.L1.LineBytes,
		ReadyAt:      now + m.cfg.NICycles,
	})
}

// deliver routes one interconnect arrival at cycle now. On a bus every
// delivery is at the message's destination; on a ring the message also
// passes intermediate nodes for point-to-point kinds, which Network
// suppresses, so arrivals here are always at the destination.
func (m *Machine) deliver(arr bus.Arrival, now uint64) {
	msg := arr.Msg
	if arr.Node != msg.Dst && msg.Kind != bus.Broadcast {
		return
	}
	if o := m.cfg.Observer; o != nil {
		o.Event(obs.Event{
			Cycle: now, Node: arr.Node, Kind: obs.EvBusDeliver,
			Addr: msg.Addr, Arg: uint64(msg.Kind),
		})
	}
	switch msg.Kind {
	case bus.Request:
		if msg.Dst == cpuChip {
			return // never happens: CPU sends requests, chips never do
		}
		if msg.PayloadBytes > 0 {
			// Write or writeback: absorb into the memory chip.
			m.dram[msg.Dst].Access(now, msg.Addr)
			return
		}
		// Read request: access the chip's DRAM and send the line back.
		dataAt := m.dram[msg.Dst].Access(now, msg.Addr)
		m.net.Enqueue(bus.Message{
			Kind:         bus.Response,
			Src:          msg.Dst,
			Dst:          cpuChip,
			Addr:         msg.Addr,
			PayloadBytes: m.cfg.L1.LineBytes,
			ReadyAt:      dataAt,
		})
	case bus.Response:
		// Line arrives at the CPU chip: complete waiting loads.
		e, ok := m.outstanding[msg.Addr]
		if !ok || !e.pending {
			return
		}
		e.pending = false
		e.dataAt = now + m.cfg.NICycles
		for _, tok := range e.waiting {
			m.core.CompleteLoad(tok, e.dataAt)
		}
		e.waiting = nil
	}
}

// Run executes the program to completion.
func (m *Machine) Run() (Result, error) {
	watchdog := m.cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = 2_000_000
	}
	lastProgress, lastCommitted := uint64(0), uint64(0)
	for !m.core.Done() {
		for _, arr := range m.net.Tick(m.now) {
			m.deliver(arr, m.now)
		}
		m.core.Cycle(m.now)
		if err := m.core.Err(); err != nil {
			return Result{}, err
		}
		if c := m.core.Committed(); c != lastCommitted {
			lastCommitted = c
			lastProgress = m.now
		} else if m.now-lastProgress > watchdog {
			return Result{}, fmt.Errorf("traditional: no commit progress at cycle %d (committed %d, pending bus %d)",
				m.now, lastCommitted, m.net.Pending())
		}
		m.now++
		if !m.cfg.NoCycleSkip {
			m.skipIdle(lastProgress, watchdog)
		}
	}
	r := Result{
		Cycles:       m.now,
		Instructions: m.core.Committed(),
		Mem:          m.stats,
		Core:         *m.core.Stats(),
		CPIStack:     *m.core.CPIStack(),
		BusStats:     *m.net.NetStats(),
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}
	return r, nil
}

// skipIdle advances m.now past cycles where neither the core nor the
// interconnect can act, exactly as core.Machine does for the DataScalar
// machine: the core certifies its no-op stretch via NextEventCycle (stall
// counters replayed by SkipCycles), the network via NextDeliveryCycle,
// and the jump is capped at the first cycle the watchdog could fire.
func (m *Machine) skipIdle(lastProgress, watchdog uint64) {
	if m.core.Done() {
		return
	}
	target := lastProgress + watchdog + 1
	if nn := m.net.NextDeliveryCycle(m.now - 1); nn < target {
		target = nn
	}
	next, ok := m.core.NextEventCycle(m.now)
	if !ok {
		return
	}
	if next < target {
		target = next
	}
	if target <= m.now {
		return
	}
	m.core.SkipCycles(m.now, target-m.now)
	m.now = target
}

// RunPerfect runs program p on the same core with the paper's perfect
// data cache (single-cycle access to any operand), optionally
// fast-forwarded to ffPC first, and returns its result.
func RunPerfect(coreCfg ooo.Config, p *prog.Program, maxInstr, ffPC uint64) (Result, error) {
	em, err := emu.New(p)
	if err != nil {
		return Result{}, err
	}
	if ffPC != 0 {
		if _, ok, err := em.RunUntilPC(ffPC, 200_000_000); err != nil {
			return Result{}, err
		} else if !ok {
			return Result{}, fmt.Errorf("traditional: fast-forward never reached pc 0x%x", ffPC)
		}
	}
	c := ooo.New(coreCfg, ooo.NewEmuSource(em, maxInstr), ooo.PerfectMem{})
	cycles, err := ooo.Run(c, 0)
	if err != nil {
		return Result{}, err
	}
	r := Result{Cycles: cycles, Instructions: c.Committed(), Core: *c.Stats(), CPIStack: *c.CPIStack()}
	if cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(cycles)
	}
	return r, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
