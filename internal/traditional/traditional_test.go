package traditional

import (
	"testing"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/ooo"
	"github.com/wisc-arch/datascalar/internal/prog"
)

const streamSum = `
        .data
arr:    .space 32768
        .text
        la   r1, arr
        li   r2, 4096
        li   r3, 0
        li   r4, 7
loop:   sd   r4, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, loop
        la   r1, arr
        li   r2, 4096
sum:    ld   r5, 0(r1)
        add  r3, r3, r5
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, sum
        halt
`

func build(t *testing.T, src string, chips int, mut func(*Config)) *Machine {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mem.Partition{NumNodes: chips, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(chips)
	cfg.WatchdogCycles = 500_000
	if mut != nil {
		mut(&cfg)
	}
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustRun(t *testing.T, m *Machine) Result {
	t.Helper()
	r, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return r
}

func TestSingleChipAllLocal(t *testing.T) {
	m := build(t, streamSum, 1, nil)
	r := mustRun(t, m)
	if r.BusStats.Messages.Value() != 0 {
		t.Fatalf("single chip used the bus: %d", r.BusStats.Messages.Value())
	}
	if m.Emu().Reg(3) != 7*4096 {
		t.Fatalf("sum = %d", m.Emu().Reg(3))
	}
}

func TestOffChipRequestResponse(t *testing.T) {
	m := build(t, streamSum, 2, nil)
	r := mustRun(t, m)
	s := r.BusStats
	if s.ByKindMsgs[bus.Response].Value() == 0 {
		t.Fatal("no responses on a half-off-chip run")
	}
	// Every read request is answered by exactly one response. (Request
	// kind also carries writes/writebacks, so requests >= responses.)
	if s.ByKindMsgs[bus.Request].Value() < s.ByKindMsgs[bus.Response].Value() {
		t.Fatalf("requests %d < responses %d",
			s.ByKindMsgs[bus.Request].Value(), s.ByKindMsgs[bus.Response].Value())
	}
	if r.Mem.OffChipLoads.Value() == 0 || r.Mem.OnChipMisses.Value() == 0 {
		t.Fatalf("miss mix = %+v", r.Mem)
	}
	if m.Emu().Reg(3) != 7*4096 {
		t.Fatalf("sum = %d", m.Emu().Reg(3))
	}
}

func TestWriteTrafficExists(t *testing.T) {
	// A store sweep over off-chip pages must generate off-chip store
	// traffic — the traffic ESP eliminates.
	src := `
        .data
buf:    .space 32768
        .text
        la   r1, buf
        li   r2, 4096
st:     sd   r2, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, st
        halt
`
	m := build(t, src, 2, nil)
	r := mustRun(t, m)
	if r.Mem.StoresOff.Value() == 0 {
		t.Fatal("no off-chip store traffic")
	}
}

func TestLessOnChipMemoryIsSlower(t *testing.T) {
	// 1/4 on-chip must be no faster than 1/2 on-chip for the same
	// program (more off-chip round trips).
	half := mustRun(t, build(t, streamSum, 2, nil))
	quarter := mustRun(t, build(t, streamSum, 4, nil))
	if quarter.Cycles < half.Cycles {
		t.Fatalf("1/4 on-chip (%d cycles) faster than 1/2 on-chip (%d cycles)",
			quarter.Cycles, half.Cycles)
	}
}

func TestPerfectCacheFastest(t *testing.T) {
	p, err := asm.Assemble("t", streamSum)
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := RunPerfect(ooo.DefaultConfig(), p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	real := mustRun(t, build(t, streamSum, 2, nil))
	if perfect.IPC <= real.IPC {
		t.Fatalf("perfect IPC %.3f <= real IPC %.3f", perfect.IPC, real.IPC)
	}
}

func TestBusWidthMatters(t *testing.T) {
	wide := mustRun(t, build(t, streamSum, 4, func(c *Config) { c.Topology.Bus.WidthBytes = 32 }))
	narrow := mustRun(t, build(t, streamSum, 4, func(c *Config) { c.Topology.Bus.WidthBytes = 4 }))
	if wide.Cycles >= narrow.Cycles {
		t.Fatalf("wide bus (%d) not faster than narrow (%d)", wide.Cycles, narrow.Cycles)
	}
}

func TestValidation(t *testing.T) {
	p, err := asm.Assemble("t", streamSum)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mem.Partition{NumNodes: 2, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4) // mismatch
	if _, err := NewMachine(cfg, p, pt); err == nil {
		t.Error("chip-count mismatch accepted")
	}
	cfg = DefaultConfig(0)
	if err := cfg.Validate(); err == nil {
		t.Error("zero chips accepted")
	}
}

func TestMaxInstr(t *testing.T) {
	m := build(t, streamSum, 2, func(c *Config) { c.MaxInstr = 300 })
	r := mustRun(t, m)
	if r.Instructions != 300 {
		t.Fatalf("instructions = %d", r.Instructions)
	}
}

func TestReplicatedPagesCountAsOnChip(t *testing.T) {
	p, err := asm.Assemble("t", streamSum)
	if err != nil {
		t.Fatal(err)
	}
	repl := make(map[uint64]bool)
	for _, pg := range p.Pages() {
		if prog.SegmentOf(pg*prog.PageSize) == prog.SegGlobal {
			repl[pg] = true
		}
	}
	pt, err := mem.Partition{NumNodes: 2, ReplicateText: true, ReplicatedPages: repl}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, m)
	if r.Mem.OffChipLoads.Value() != 0 {
		t.Fatalf("replicated pages went off-chip: %d", r.Mem.OffChipLoads.Value())
	}
}

func TestDirtyEvictionWritebacks(t *testing.T) {
	// Load a line (allocate), dirty it with a store hit, then evict it
	// with a conflicting load: the writeback goes off-chip when the line
	// lives in a memory chip and on-chip otherwise.
	p, err := asm.Assemble("wb", `
        .data
a:      .space 32768
        .text
        la   r1, a
        li   r9, 0
bench_main:
        li   r20, 400
loop:   ld   r2, 0(r1)
        sd   r2, 0(r1)
        ld   r3, 512(r1)
        add  r9, r9, r3
        la   r4, a
        sub  r5, r1, r4
        addi r5, r5, 8192
        andi r5, r5, 24576
        add  r1, r4, r5
        addi r20, r20, -1
        bne  r20, zero, loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mem.Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.L1.SizeBytes = 512
	cfg.FastForwardPC = p.Labels["bench_main"]
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Mem.WritebacksOff.Value() == 0 {
		t.Errorf("no off-chip writebacks: %+v", r.Mem)
	}
	if r.Mem.WritebacksOn.Value() == 0 {
		t.Errorf("no on-chip writebacks: %+v", r.Mem)
	}
	if m.Network().NetStats().Messages.Value() == 0 {
		t.Error("network accessor broken")
	}
}

func TestRingConfigOnTraditional(t *testing.T) {
	p, err := asm.Assemble("t", streamSum)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mem.Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.Topology.Kind = bus.TopoRing
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Emu().Reg(3) != 7*4096 {
		t.Fatalf("sum over ring = %d", m.Emu().Reg(3))
	}
	if r.Mem.OffChipLoads.Value() == 0 {
		t.Fatal("nothing crossed the ring")
	}
}

func TestValidateBranches(t *testing.T) {
	bad := DefaultConfig(2)
	bad.L1.SizeBytes = 100
	if err := bad.Validate(); err == nil {
		t.Error("bad L1 accepted")
	}
	bad = DefaultConfig(2)
	bad.DRAM.AccessCycles = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad DRAM accepted")
	}
	bad = DefaultConfig(2)
	bad.Topology.Bus.WidthBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad bus accepted")
	}
	bad = DefaultConfig(2)
	bad.Core.RUUSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad core accepted")
	}
	bad = DefaultConfig(2)
	bad.L1HitCycles = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero hit latency accepted")
	}
}

func TestFastForwardErrors(t *testing.T) {
	p, err := asm.Assemble("t", streamSum)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mem.Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.FastForwardPC = 0xdeadbee8 // never reached
	if _, err := NewMachine(cfg, p, pt); err == nil {
		t.Error("unreachable fast-forward accepted")
	}
	if _, err := RunPerfect(cfg.Core, p, 0, 0xdeadbee8); err == nil {
		t.Error("unreachable perfect fast-forward accepted")
	}
}
