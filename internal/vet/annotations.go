package vet

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Directive grammar (documented in docs/ANALYSIS.md):
//
//	//dsvet:hotpath               on a function declaration's doc comment
//	//dsvet:enum                  on a type declaration's doc comment
//	//dsvet:ok <class> <reason>   on (or directly above) a flagged line
//
// Directive comments have no space after the slashes, the same
// convention as //go:build, so go/ast never folds them into godoc text.
const directivePrefix = "//dsvet:"

// okDirective is one audited suppression.
type okDirective struct {
	class  Class
	reason string
}

// knownClasses is the closed class set, for validating ok directives.
var knownClasses = map[Class]bool{
	ClassMapOrder:         true,
	ClassWallClock:        true,
	ClassHotPathAlloc:     true,
	ClassExhaustiveSwitch: true,
	ClassConfinement:      true,
	ClassExitDiscipline:   true,
	ClassAnnotation:       true,
}

// directiveIn reports whether a comment group carries the given
// directive verb, e.g. verb "hotpath" matches "//dsvet:hotpath ...".
func directiveIn(g *ast.CommentGroup, verb string) (*ast.Comment, bool) {
	if g == nil {
		return nil, false
	}
	for _, c := range g.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		word, _, _ := strings.Cut(rest, " ")
		if word == verb {
			return c, true
		}
	}
	return nil, false
}

// recordEnums notes every //dsvet:enum-annotated type of a module
// package, keyed "importPath.TypeName". It runs for dependency and
// target loads alike, so consumer packages always see their imports'
// markers.
func (l *Loader) recordEnums(importPath string, syntax []*ast.File) {
	for _, f := range syntax {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			_, declMarked := directiveIn(gd.Doc, "enum")
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, specMarked := directiveIn(ts.Doc, "enum")
				if declMarked || specMarked {
					l.enums[importPath+"."+ts.Name.Name] = true
				}
			}
		}
	}
}

// scanDirectives walks the package's comments, attaching hotpath marks
// to their functions, indexing ok suppressions by (file, line), and
// reporting malformed or misplaced directives as annotation
// diagnostics.
func (p *Package) scanDirectives() {
	p.ok = make(map[string]map[int][]okDirective)
	// consumed tracks directive comments legitimately attached to a
	// declaration, so the sweep below can flag strays.
	consumed := make(map[token.Pos]bool)
	for _, f := range p.Syntax {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if c, ok := directiveIn(d.Doc, "hotpath"); ok {
					consumed[c.Pos()] = true
					p.hotpath = append(p.hotpath, d)
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				if c, ok := directiveIn(d.Doc, "enum"); ok {
					consumed[c.Pos()] = true
				}
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						if c, ok := directiveIn(ts.Doc, "enum"); ok {
							consumed[c.Pos()] = true
						}
					}
				}
			}
		}
		for _, g := range f.Comments {
			for _, c := range g.List {
				p.scanDirective(c, consumed)
			}
		}
	}
}

// scanDirective classifies one raw comment: an ok suppression is
// indexed, a consumed hotpath/enum marker is fine, anything else
// spelled //dsvet: is a finding.
func (p *Package) scanDirective(c *ast.Comment, consumed map[token.Pos]bool) {
	rest, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return
	}
	pos := p.Fset.Position(c.Pos())
	file := p.loader.relFile(pos.Filename)
	verb, args, _ := strings.Cut(rest, " ")
	switch verb {
	case "ok":
		class, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
		reason = strings.TrimSpace(reason)
		switch {
		case !knownClasses[Class(class)]:
			p.annDiags = append(p.annDiags, Diagnostic{
				Class: ClassAnnotation, File: file, Line: pos.Line, Col: pos.Column,
				Msg: "//dsvet:ok names unknown class " + strconv.Quote(class),
			})
		case reason == "":
			p.annDiags = append(p.annDiags, Diagnostic{
				Class: ClassAnnotation, File: file, Line: pos.Line, Col: pos.Column,
				Msg: "//dsvet:ok " + class + " needs an audit reason",
			})
		default:
			if p.ok[file] == nil {
				p.ok[file] = make(map[int][]okDirective)
			}
			p.ok[file][pos.Line] = append(p.ok[file][pos.Line],
				okDirective{class: Class(class), reason: reason})
		}
	case "hotpath":
		if !consumed[c.Pos()] {
			p.annDiags = append(p.annDiags, Diagnostic{
				Class: ClassAnnotation, File: file, Line: pos.Line, Col: pos.Column,
				Msg: "//dsvet:hotpath must be in a function declaration's doc comment",
			})
		}
	case "enum":
		if !consumed[c.Pos()] {
			p.annDiags = append(p.annDiags, Diagnostic{
				Class: ClassAnnotation, File: file, Line: pos.Line, Col: pos.Column,
				Msg: "//dsvet:enum must be in a type declaration's doc comment",
			})
		}
	default:
		p.annDiags = append(p.annDiags, Diagnostic{
			Class: ClassAnnotation, File: file, Line: pos.Line, Col: pos.Column,
			Msg: "unknown directive //dsvet:" + verb,
		})
	}
}

// checkAnnotations surfaces the malformed-directive findings collected
// during the scan.
func checkAnnotations(p *Package) []Diagnostic { return p.annDiags }

// suppress drops diagnostics covered by an //dsvet:ok of the matching
// class on the same line or the line directly above.
func (p *Package) suppress(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for _, d := range ds {
		if p.suppressed(d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (p *Package) suppressed(d Diagnostic) bool {
	lines := p.ok[d.File]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{d.Line, d.Line - 1} {
		for _, ok := range lines[ln] {
			if ok.class == d.Class {
				return true
			}
		}
	}
	return false
}

// posOf converts a token.Pos into the (file, line, col) triple used by
// diagnostics.
func (p *Package) posOf(pos token.Pos) (string, int, int) {
	pp := p.Fset.Position(pos)
	return p.loader.relFile(pp.Filename), pp.Line, pp.Column
}

// diag builds one diagnostic at pos.
func (p *Package) diag(class Class, pos token.Pos, msg string) Diagnostic {
	file, line, col := p.posOf(pos)
	return Diagnostic{Class: class, File: file, Line: line, Col: col, Msg: msg}
}
