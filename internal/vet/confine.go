package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkConfinement flags go statements and raw concurrency primitives —
// channel types and operations, select, and anything from sync or
// sync/atomic — outside the allowlisted files. The simulator's
// byte-identical guarantee rests on single-goroutine timing loops;
// concurrency is confined to the experiment engine's worker pool so
// every review of a determinism bug starts from a known-serial world.
// This is the guardrail that keeps the planned intra-run parallel DES
// reviewable: new concurrency sites must be added to the allowlist
// deliberately, in a diff that says so.
func checkConfinement(p *Package, cfg Config) []Diagnostic {
	var out []Diagnostic
	for i, f := range p.Syntax {
		if matchesAny(p.Files[i], cfg.ConcurrencyFiles) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				out = append(out, p.diag(ClassConfinement, n.Pos(),
					"go statement outside the allowlisted concurrency files"))
			case *ast.SelectStmt:
				out = append(out, p.diag(ClassConfinement, n.Pos(),
					"select outside the allowlisted concurrency files"))
			case *ast.SendStmt:
				out = append(out, p.diag(ClassConfinement, n.Pos(),
					"channel send outside the allowlisted concurrency files"))
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					out = append(out, p.diag(ClassConfinement, n.Pos(),
						"channel receive outside the allowlisted concurrency files"))
				}
			case *ast.ChanType:
				out = append(out, p.diag(ClassConfinement, n.Pos(),
					"channel type outside the allowlisted concurrency files"))
			case *ast.Ident:
				obj := p.Info.Uses[n]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch path := obj.Pkg().Path(); path {
				case "sync", "sync/atomic":
					// Flag the root reference (sync.Mutex, atomic.Int64, …)
					// once; method calls on an already-flagged field would
					// double-report, so only type and function names count.
					if _, isType := obj.(*types.TypeName); isType {
						out = append(out, p.diag(ClassConfinement, n.Pos(),
							path+"."+obj.Name()+" outside the allowlisted concurrency files"))
					} else if _, isFunc := obj.(*types.Func); isFunc && !isMethod(obj) {
						out = append(out, p.diag(ClassConfinement, n.Pos(),
							path+"."+obj.Name()+" outside the allowlisted concurrency files"))
					}
				}
			}
			return true
		})
	}
	return out
}

// isMethod reports whether a *types.Func is a method (has a receiver).
// Method uses like mu.Lock() are reached through a flagged field type,
// so flagging them again would only add noise.
func isMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
