package vet

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// checkExhaustiveSwitch enforces that every switch over a
// //dsvet:enum-annotated type (obs.StallKind, obs.EventKind,
// bus.MsgPhase, fault.Class) either covers every enumerator or carries
// a panicking default. The point is evolution safety: adding a 14th
// stall bucket must fail lint until every consumer has decided what the
// new value means — the same discipline the exhaustiveness *tests*
// enforce dynamically, moved to compile-review time.
func checkExhaustiveSwitch(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := namedOf(p.Info.TypeOf(sw.Tag))
			if named == nil || named.Obj().Pkg() == nil {
				return true
			}
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if !p.loader.enums[key] {
				return true
			}
			if d, bad := p.switchGaps(sw, named); bad {
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

// namedOf unwraps aliases and returns the named type, if any.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// switchGaps compares the switch's case constants against the
// enumerators of named and builds the diagnostic for any gap.
func (p *Package) switchGaps(sw *ast.SwitchStmt, named *types.Named) (Diagnostic, bool) {
	enumNames, enumVals := enumerators(named)
	covered := make([]bool, len(enumVals))
	hasDefault, defaultPanics := false, false
	opaque := false // a non-constant case expression defeats the analysis
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			defaultPanics = p.bodyPanics(cc.Body)
			continue
		}
		for _, e := range cc.List {
			tv, ok := p.Info.Types[e]
			if !ok || tv.Value == nil {
				opaque = true
				continue
			}
			for i, v := range enumVals {
				if constant.Compare(tv.Value, token.EQL, v) {
					covered[i] = true
				}
			}
		}
	}
	var missing []string
	for i, c := range covered {
		if !c {
			missing = append(missing, enumNames[i])
		}
	}
	typeName := named.Obj().Pkg().Name() + "." + named.Obj().Name()
	switch {
	case hasDefault && defaultPanics:
		return Diagnostic{}, false
	case len(missing) == 0 && !opaque:
		return Diagnostic{}, false
	case opaque:
		return p.diag(ClassExhaustiveSwitch, sw.Switch, fmt.Sprintf(
			"switch over %s has non-constant cases; add a panicking default so new enumerators cannot pass silently", typeName)), true
	case hasDefault:
		return p.diag(ClassExhaustiveSwitch, sw.Switch, fmt.Sprintf(
			"switch over %s misses %s and its default does not panic — a new enumerator would be silently absorbed", typeName, strings.Join(missing, ", "))), true
	default:
		return p.diag(ClassExhaustiveSwitch, sw.Switch, fmt.Sprintf(
			"switch over %s misses %s (cover every enumerator or add a panicking default)", typeName, strings.Join(missing, ", "))), true
	}
}

// enumerators lists the constants of the defining package whose type is
// exactly the named type, in declaration-scope (sorted-name) order.
func enumerators(named *types.Named) (names []string, vals []constant.Value) {
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(types.Unalias(c.Type()), named) {
			names = append(names, name)
			vals = append(vals, c.Val())
		}
	}
	return names, vals
}

// bodyPanics reports whether a default clause terminates with intent: a
// direct panic call anywhere in its body.
func (p *Package) bodyPanics(body []ast.Stmt) bool {
	found := false
	for _, s := range body {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return !found
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
