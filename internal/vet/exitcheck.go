package vet

import (
	"go/ast"
	"strings"
)

// checkExitDiscipline flags os.Exit and log.Fatal* outside internal/cli
// and package-main wrappers. Library code must return errors: the
// structured exit-code convention (0/1/2/3/4 — see internal/cli) lives
// in exactly one place, and an os.Exit buried in a library both skips
// deferred cleanup and makes the in-process CLI tests impossible.
func checkExitDiscipline(p *Package, cfg Config) []Diagnostic {
	if p.Name == "main" || matchesAny(p.Path, cfg.ExitPackages) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch path := obj.Pkg().Path(); {
			case path == "os" && obj.Name() == "Exit":
				out = append(out, p.diag(ClassExitDiscipline, id.Pos(),
					"os.Exit outside internal/cli and main wrappers (return an error; internal/cli classifies it)"))
			case path == "log" && strings.HasPrefix(obj.Name(), "Fatal"):
				out = append(out, p.diag(ClassExitDiscipline, id.Pos(),
					"log."+obj.Name()+" outside internal/cli and main wrappers (return an error; internal/cli classifies it)"))
			}
			return true
		})
	}
	return out
}
