package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// checkHotPathAlloc rejects allocation-prone constructs inside
// functions annotated //dsvet:hotpath — the per-cycle and per-step
// paths the AllocsPerRun==0 benchmark guards protect dynamically. The
// static rules are deliberately conservative approximations of the
// escape analyzer:
//
//   - &T{...}: an escaping composite literal (address taken).
//   - []T{...} / map[...]...{...}: slice and map literals allocate.
//   - make(...) / new(...): direct allocations.
//   - func literals: closures capture and allocate.
//   - string concatenation and string<->[]byte/[]rune/rune conversions.
//   - calls into fmt (which also allocate via boxing).
//   - interface boxing: a non-pointer-shaped concrete value passed to
//     an interface parameter or assigned to an interface variable.
//
// Cold paths inside a hot function (error returns that end the run,
// trace slow paths behind a disabled-by-default flag) are silenced with
// //dsvet:ok hotpath-alloc <reason> — the annotation is the audit trail
// for why the guard tolerates them.
func checkHotPathAlloc(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, fd := range p.hotpath {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := n.X.(*ast.CompositeLit); ok {
						out = append(out, p.hotDiag(fd, n.Pos(), "escaping composite literal (&T{...})"))
					}
				}
			case *ast.CompositeLit:
				switch p.underlyingOf(n).(type) {
				case *types.Slice:
					out = append(out, p.hotDiag(fd, n.Pos(), "slice literal allocates"))
				case *types.Map:
					out = append(out, p.hotDiag(fd, n.Pos(), "map literal allocates"))
				}
			case *ast.FuncLit:
				out = append(out, p.hotDiag(fd, n.Pos(), "closure allocates"))
			case *ast.BinaryExpr:
				if n.Op == token.ADD && p.isNonConstString(n) {
					out = append(out, p.hotDiag(fd, n.Pos(), "string concatenation allocates"))
				}
			case *ast.AssignStmt:
				out = append(out, p.hotAssign(fd, n)...)
			case *ast.ValueSpec:
				if n.Type == nil {
					break
				}
				lt := p.Info.TypeOf(n.Type)
				for _, val := range n.Values {
					if boxes(lt, p.Info.TypeOf(val)) {
						out = append(out, p.hotDiag(fd, val.Pos(), "interface boxing in declaration"))
					}
				}
			case *ast.CallExpr:
				out = append(out, p.hotCall(fd, n)...)
			}
			return true
		})
	}
	return out
}

func (p *Package) hotDiag(fd *ast.FuncDecl, pos token.Pos, msg string) Diagnostic {
	return p.diag(ClassHotPathAlloc, pos,
		fmt.Sprintf("%s in hot path %s", msg, fd.Name.Name))
}

func (p *Package) underlyingOf(e ast.Expr) types.Type {
	t := p.Info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func (p *Package) isNonConstString(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// hotAssign flags string += and interface-boxing assignments.
func (p *Package) hotAssign(fd *ast.FuncDecl, as *ast.AssignStmt) []Diagnostic {
	var out []Diagnostic
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if b, ok := p.underlyingOf(as.Lhs[0]).(*types.Basic); ok && b.Info()&types.IsString != 0 {
			out = append(out, p.hotDiag(fd, as.Pos(), "string concatenation allocates"))
		}
	}
	if (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) && len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			lt := p.Info.TypeOf(as.Lhs[i])
			if lt != nil && boxes(lt, p.Info.TypeOf(as.Rhs[i])) {
				out = append(out, p.hotDiag(fd, as.Rhs[i].Pos(), "interface boxing in assignment"))
			}
		}
	}
	return out
}

// hotCall flags fmt calls, make/new, allocating conversions, and
// interface-boxing arguments.
func (p *Package) hotCall(fd *ast.FuncDecl, call *ast.CallExpr) []Diagnostic {
	var out []Diagnostic
	// Conversion? T(x)
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if msg := conversionAllocs(tv.Type, p.Info.TypeOf(call.Args[0])); msg != "" {
			out = append(out, p.hotDiag(fd, call.Pos(), msg))
		} else if boxes(tv.Type, p.Info.TypeOf(call.Args[0])) {
			out = append(out, p.hotDiag(fd, call.Pos(), "interface boxing in conversion"))
		}
		return out
	}
	// Builtin?
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				out = append(out, p.hotDiag(fd, call.Pos(), id.Name+" allocates"))
			}
			return out
		}
	}
	// fmt call?
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := p.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				out = append(out, p.hotDiag(fd, call.Pos(), "fmt."+sel.Sel.Name+" call allocates"))
				return out
			}
		}
	}
	// Interface boxing through parameters.
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return out
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pt, p.Info.TypeOf(arg)) {
			out = append(out, p.hotDiag(fd, arg.Pos(), "interface boxing in call argument"))
		}
	}
	return out
}

// conversionAllocs classifies conversions that copy memory: string <->
// []byte/[]rune and integer/rune -> string.
func conversionAllocs(dst, src types.Type) string {
	if dst == nil || src == nil {
		return ""
	}
	d, s := dst.Underlying(), src.Underlying()
	if db, ok := d.(*types.Basic); ok && db.Info()&types.IsString != 0 {
		switch st := s.(type) {
		case *types.Slice:
			return "string conversion from slice allocates"
		case *types.Basic:
			if st.Info()&types.IsInteger != 0 {
				return "string(rune) conversion allocates"
			}
		}
	}
	if dsl, ok := d.(*types.Slice); ok {
		if el, ok := dsl.Elem().Underlying().(*types.Basic); ok &&
			(el.Kind() == types.Byte || el.Kind() == types.Rune || el.Kind() == types.Uint8 || el.Kind() == types.Int32) {
			if sb, ok := s.(*types.Basic); ok && sb.Info()&types.IsString != 0 {
				return "[]byte/[]rune conversion from string allocates"
			}
		}
	}
	return ""
}

// boxes reports whether storing a value of type src into a location of
// type dst boxes a non-pointer-shaped value into an interface.
// Pointer-shaped kinds (pointers, channels, maps, funcs,
// unsafe.Pointer) fit the interface word and do not allocate; nil and
// existing interfaces are pass-through.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	switch s := src.Underlying().(type) {
	case *types.Interface:
		return false
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		switch s.Kind() {
		case types.UntypedNil, types.UnsafePointer:
			return false
		}
		return true
	}
	return true
}
