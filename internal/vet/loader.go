package vet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader is a small module-aware package loader built on the stdlib
// only: go/build selects files (honoring build constraints, cgo off),
// go/parser parses them, go/types checks them. Imports inside the
// module resolve against the module directory; everything else resolves
// against GOROOT/src (with the GOROOT vendor fallback). Dependency
// packages are checked with IgnoreFuncBodies and memoized, so vetting
// the whole repository type-checks the stdlib's declarations once.
type Loader struct {
	// ModuleDir is the directory holding go.mod; ModulePath its module
	// path.
	ModuleDir  string
	ModulePath string

	Fset *token.FileSet

	ctxt  build.Context
	sizes types.Sizes
	deps  map[string]*depEntry
	// enums records types annotated //dsvet:enum as "pkgpath.TypeName".
	// It is filled while parsing any module package — dependency or
	// target — so a consumer package sees markers from its imports.
	enums map[string]bool
}

type depEntry struct {
	pkg *types.Package
	err error
}

// Package is one fully type-checked target package plus the side tables
// the checks need.
type Package struct {
	Path  string
	Dir   string
	Name  string
	Files []string // module-relative file paths, parallel to Syntax
	Fset  *token.FileSet
	// Syntax holds the parsed files (with comments).
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info

	loader *Loader
	// ok maps file → line → suppression directives on that line.
	ok map[string]map[int][]okDirective
	// hotpath holds the //dsvet:hotpath function declarations.
	hotpath []*ast.FuncDecl
	// annDiags are malformed-directive findings collected during the
	// directive scan.
	annDiags []Diagnostic
}

// NewLoader opens the module rooted at dir (the directory containing
// go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false // select the pure-Go variants everywhere
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		Fset:       token.NewFileSet(),
		ctxt:       ctxt,
		sizes:      types.SizesFor("gc", runtime.GOARCH),
		deps:       make(map[string]*depEntry),
		enums:      make(map[string]bool),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("vet: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("vet: %s: no module directive", path)
}

// inModule reports whether importPath belongs to the loaded module.
func (l *Loader) inModule(importPath string) bool {
	return importPath == l.ModulePath ||
		strings.HasPrefix(importPath, l.ModulePath+"/")
}

// dirFor resolves an import path to a source directory: module paths
// land in the module tree, everything else in GOROOT/src, with the
// GOROOT vendor directory as a fallback for the stdlib's vendored
// golang.org/x dependencies.
func (l *Loader) dirFor(importPath string) (string, error) {
	if l.inModule(importPath) {
		rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), nil
	}
	goroot := runtime.GOROOT()
	dir := filepath.Join(goroot, "src", filepath.FromSlash(importPath))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	vdir := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(importPath))
	if fi, err := os.Stat(vdir); err == nil && fi.IsDir() {
		return vdir, nil
	}
	return "", fmt.Errorf("vet: cannot resolve import %q (not in module %s or GOROOT)", importPath, l.ModulePath)
}

// goFiles lists the buildable non-test Go files of dir in stable order.
func (l *Loader) goFiles(dir string) ([]string, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := append([]string(nil), bp.GoFiles...)
	sort.Strings(files)
	for i, f := range files {
		files[i] = filepath.Join(dir, f)
	}
	return files, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.load(path)
}

// ImportFrom implements types.ImporterFrom; the source directory is
// irrelevant because resolution is absolute (module or GOROOT).
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return l.load(path)
}

// load type-checks the package at importPath declarations-only
// (IgnoreFuncBodies) and memoizes the result. Module packages also get
// their //dsvet:enum markers recorded.
func (l *Loader) load(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if e, ok := l.deps[importPath]; ok {
		if e == nil {
			return nil, fmt.Errorf("vet: import cycle through %q", importPath)
		}
		return e.pkg, e.err
	}
	l.deps[importPath] = nil // cycle marker
	pkg, err := l.check(importPath, true)
	l.deps[importPath] = &depEntry{pkg: pkg, err: err}
	return pkg, err
}

// parseDir parses every buildable file of importPath with comments.
func (l *Loader) parseDir(importPath string) (dir string, files []string, syntax []*ast.File, err error) {
	dir, err = l.dirFor(importPath)
	if err != nil {
		return "", nil, nil, err
	}
	files, err = l.goFiles(dir)
	if err != nil {
		return "", nil, nil, fmt.Errorf("vet: %s: %w", importPath, err)
	}
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return "", nil, nil, err
		}
		syntax = append(syntax, af)
	}
	return dir, files, syntax, nil
}

// check parses and type-checks importPath. Dependency loads skip
// function bodies; target loads keep them and are driven by LoadTarget.
func (l *Loader) check(importPath string, depOnly bool) (*types.Package, error) {
	_, _, syntax, err := l.parseDir(importPath)
	if err != nil {
		return nil, err
	}
	if l.inModule(importPath) {
		l.recordEnums(importPath, syntax)
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: depOnly,
		FakeImportC:      true,
		Sizes:            l.sizes,
	}
	pkg, err := conf.Check(importPath, l.Fset, syntax, nil)
	if err != nil {
		return nil, fmt.Errorf("vet: type-checking %s: %w", importPath, err)
	}
	return pkg, nil
}

// LoadTarget fully type-checks importPath (bodies included, full
// types.Info) and scans its //dsvet: directives.
func (l *Loader) LoadTarget(importPath string) (*Package, error) {
	dir, files, syntax, err := l.parseDir(importPath)
	if err != nil {
		return nil, err
	}
	l.recordEnums(importPath, syntax)
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Sizes:       l.sizes,
	}
	tpkg, err := conf.Check(importPath, l.Fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("vet: type-checking %s: %w", importPath, err)
	}
	rel := make([]string, len(files))
	for i, f := range files {
		rel[i] = l.relFile(f)
	}
	p := &Package{
		Path:   importPath,
		Dir:    dir,
		Name:   tpkg.Name(),
		Files:  rel,
		Fset:   l.Fset,
		Syntax: syntax,
		Types:  tpkg,
		Info:   info,
		loader: l,
	}
	p.scanDirectives()
	return p, nil
}

// relFile renders a file path relative to the module root (falling back
// to the absolute path outside it).
func (l *Loader) relFile(path string) string {
	if r, err := filepath.Rel(l.ModuleDir, path); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(path)
}

// List expands package patterns to import paths. Supported forms:
// "./..." (every package under the module root), a module-relative
// directory like "./internal/obs", or a full import path. The result is
// sorted and deduplicated.
func (l *Loader) List(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(pat, "./")))
			if fi, err := os.Stat(filepath.Join(l.ModuleDir, filepath.FromSlash(rel))); err != nil || !fi.IsDir() {
				return nil, fmt.Errorf("vet: no such package directory: %s", pat)
			}
			if rel == "." {
				add(l.ModulePath)
			} else {
				add(l.ModulePath + "/" + rel)
			}
		default:
			add(pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

// walkModule finds every directory under the module root holding
// buildable Go files, skipping testdata, vendor, and hidden or
// underscore-prefixed directories.
func (l *Loader) walkModule() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if bp, err := l.ctxt.ImportDir(path, 0); err == nil && len(bp.GoFiles) > 0 {
			rel, err := filepath.Rel(l.ModuleDir, path)
			if err != nil {
				return err
			}
			if rel == "." {
				out = append(out, l.ModulePath)
			} else {
				out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	return out, err
}
