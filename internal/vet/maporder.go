package vet

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkMapOrder flags range statements over maps whose bodies leak the
// (randomized) iteration order into observable output: printing or
// writing inside the loop, appending to a slice declared outside the
// loop that is never subsequently sorted, or enqueueing messages.
// Accumulating into another map, summing counters, and other
// order-insensitive bodies are fine.
func checkMapOrder(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if msg := p.mapOrderLeak(rng, fd); msg != "" {
					out = append(out, p.diag(ClassMapOrder, rng.For,
						"map iteration order leaks: "+msg))
				}
				return true
			})
		}
	}
	return out
}

// mapOrderLeak inspects a range-over-map body and reports the first
// order-dependent effect, or "" when the body is order-insensitive.
func (p *Package) mapOrderLeak(rng *ast.RangeStmt, encl *ast.FuncDecl) string {
	var msg string
	var appended []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if msg != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := p.outputCall(n); ok {
				msg = fmt.Sprintf("%s inside the loop", name)
				return false
			}
			if obj := p.appendTarget(n); obj != nil && obj.Pos().IsValid() &&
				(obj.Pos() < rng.Pos() || obj.Pos() > rng.End()) {
				appended = append(appended, obj)
			}
		case *ast.SendStmt:
			msg = "channel send inside the loop"
			return false
		}
		return true
	})
	if msg != "" {
		return msg
	}
	for _, obj := range appended {
		if !p.sortedAfter(rng, encl, obj) {
			return fmt.Sprintf("appends to %q with no subsequent sort", obj.Name())
		}
	}
	return ""
}

// outputCall reports whether call emits observable output: any fmt
// function, any method named like an io writer, or an Enqueue.
func (p *Package) outputCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := p.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
			return "fmt." + sel.Sel.Name, true
		}
	}
	switch name := sel.Sel.Name; {
	case strings.HasPrefix(name, "Write"), strings.HasPrefix(name, "Print"),
		strings.HasPrefix(name, "Fprint"), name == "Enqueue":
		return "call to " + name, true
	}
	return "", false
}

// appendTarget returns the object a call grows via x = append(x, ...)
// patterns, i.e. the first argument of a builtin append, when it is a
// plain identifier.
func (p *Package) appendTarget(call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.Uses[target]
}

// sortedAfter reports whether, somewhere in the enclosing function
// after the range statement, obj is passed to a sorting call (sort.*,
// slices.Sort*, or a local helper whose name contains "sort"). That is
// the idiom that makes collect-then-sort loops deterministic.
func (p *Package) sortedAfter(rng *ast.RangeStmt, encl *ast.FuncDecl, obj types.Object) bool {
	if encl == nil || encl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !p.isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isSortCall recognizes sorting calls by package (sort, slices) or by
// name ("sort" substring, case-insensitive).
func (p *Package) isSortCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := p.Info.Uses[id].(*types.PkgName); ok {
				switch pkg.Imported().Path() {
				case "sort", "slices":
					return true
				}
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}
