// Package ann exercises the directive validator: every //dsvet:
// comment below is malformed or misplaced.
package ann

//dsvet:ok no-such-class because I said so
var a = 1

//dsvet:ok map-order
var b = 2

//dsvet:frobnicate
var c = 3

//dsvet:hotpath
var d = 4

//dsvet:enum
var e = 5
