// Package exits is library code (not package main, not internal/cli),
// so process-exit calls are flagged.
package exits

import (
	"log"
	"os"
)

// Bail kills the process from a library: flagged.
func Bail(err error) {
	log.Fatalf("bail: %v", err)
}

// Quit exits directly: flagged.
func Quit() {
	os.Exit(3)
}
