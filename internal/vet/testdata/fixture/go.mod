module example.com/fixture

go 1.22
