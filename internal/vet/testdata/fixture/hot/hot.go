// Package hot exercises every construct the hotpath-alloc check
// rejects, plus one audited suppression.
package hot

import "fmt"

type point struct{ x, y int }

type sink interface{ accept(any) }

// Fill is the hot path under test; every line below allocates.
//
//dsvet:hotpath
func Fill(s sink, n int) *point {
	p := &point{x: n}               // escaping composite literal
	xs := []int{1, 2, 3}            // slice literal
	m := map[int]int{1: 2}          // map literal
	f := func() int { return n }    // closure
	label := "n=" + fmt.Sprint(n)   // string concat + fmt call
	bs := []byte(label)             // string->slice conversion
	ys := make([]int, n)            // make
	q := new(point)                 // new
	s.accept(n)                     // interface boxing (call argument)
	var v any = point{x: len(xs)}   // interface boxing (assignment)
	_, _, _, _, _, _ = m, f, bs, ys, q, v
	return p
}

// FillCold shows the audited escape hatch: the same construct, silenced
// with a reason.
//
//dsvet:hotpath
func FillCold(n int) string {
	//dsvet:ok hotpath-alloc cold diagnostic path, runs once per failure
	return fmt.Sprintf("n=%d", n)
}

// Warm is not annotated, so nothing here is checked.
func Warm(n int) *point { return &point{x: n} }
