// Package bus mirrors the real topology taxonomy: a four-kind closed
// enum whose consumers must stay exhaustive, so growing the topology set
// (the way mesh and torus grew it) fails lint until every switch learns
// the new kind.
package bus

// TopoKind is the fixture's closed interconnect taxonomy.
//
//dsvet:enum
type TopoKind uint8

// The four kinds; TTorus is the "newly added" one the stale consumer
// below has not learned about.
const (
	TBus TopoKind = iota
	TRing
	TMesh
	TTorus
)

// Name switches over only the original three kinds: flagged.
func Name(k TopoKind) string {
	switch k {
	case TBus:
		return "bus"
	case TRing:
		return "ring"
	case TMesh:
		return "mesh"
	}
	return ""
}

// NameDefended carries a panicking default: clean.
func NameDefended(k TopoKind) string {
	switch k {
	case TBus:
		return "bus"
	default:
		panic("unhandled topology kind")
	}
}

// Links covers all four kinds: clean.
func Links(k TopoKind, n int) int {
	switch k {
	case TBus:
		return 1
	case TRing:
		return n
	case TMesh, TTorus:
		return 4 * n
	}
	return 0
}
