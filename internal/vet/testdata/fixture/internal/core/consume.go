// Package core consumes the fixture stall taxonomy from another
// package, proving the //dsvet:enum marker travels through dependency
// loading.
package core

import "example.com/fixture/internal/obs"

// Thirteen names — the consumer that predates K13 and must fail lint.
var names = [obs.NumKinds]string{}

// Name switches over only the original thirteen kinds: flagged.
func Name(k obs.StallKind) string {
	switch k {
	case obs.K0, obs.K1, obs.K2, obs.K3, obs.K4, obs.K5, obs.K6:
		return "low"
	case obs.K7, obs.K8, obs.K9, obs.K10, obs.K11, obs.K12:
		return "high"
	}
	return names[0]
}

// NameDefended carries a panicking default: clean.
func NameDefended(k obs.StallKind) string {
	switch k {
	case obs.K0:
		return "zero"
	default:
		panic("unhandled stall kind")
	}
}

// NameCovered covers all fourteen: clean.
func NameCovered(k obs.StallKind) string {
	switch k {
	case obs.K0, obs.K1, obs.K2, obs.K3, obs.K4, obs.K5, obs.K6,
		obs.K7, obs.K8, obs.K9, obs.K10, obs.K11, obs.K12, obs.K13:
		return "any"
	}
	return ""
}

// NameSilentDefault covers twelve with a non-panicking default: flagged
// (a new enumerator would be silently absorbed).
func NameSilentDefault(k obs.StallKind) string {
	switch k {
	case obs.K0, obs.K1, obs.K2, obs.K3, obs.K4, obs.K5,
		obs.K6, obs.K7, obs.K8, obs.K9, obs.K10, obs.K11:
		return "known"
	default:
		return "other"
	}
}
