// The fixture's second sanctioned concurrency site: the partitioned
// intra-run loop at internal/core/parallel.go is on the default
// allowlist, so the worker goroutines and barrier channels here are
// not flagged.
package core

// windows mimics the coordinator/worker handshake of the real
// partitioned loop.
type windows struct {
	start chan struct{}
	done  chan struct{}
}

// run dispatches one window and waits at the barrier.
func (w *windows) run() {
	w.start = make(chan struct{}, 1)
	w.done = make(chan struct{}, 1)
	go func() {
		<-w.start
		w.done <- struct{}{}
	}()
	w.start <- struct{}{}
	<-w.done
}
