// spill.go is in internal/core but NOT on the concurrency allowlist:
// the allowlist names individual files, not packages, so concurrency
// leaking out of parallel.go into the rest of the core is still
// flagged.
package core

// leak spawns a goroutine outside the sanctioned file.
func leak() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	<-ch
}
