// Package emu sits on a timing-path suffix (internal/emu), so wall
// clock and global randomness are banned here.
package emu

import (
	"math/rand"
	"time"
)

// Jitter mixes wall-clock and unseeded randomness into "timing": both
// flagged.
func Jitter() int64 {
	return time.Now().UnixNano() + int64(rand.Int())
}

// Elapsed reads the wall clock: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}
