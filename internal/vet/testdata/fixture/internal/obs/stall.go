// Package obs mirrors the real stall taxonomy: a 14-kind enum (one more
// than the shipped 13) so the exhaustive-switch fixture proves that
// adding a bucket fails lint until every consumer is updated.
package obs

// StallKind is the fixture's closed stall taxonomy.
//
//dsvet:enum
type StallKind uint8

// The fourteen kinds; K13 is the "newly added" bucket consumers have
// not yet learned about.
const (
	K0 StallKind = iota
	K1
	K2
	K3
	K4
	K5
	K6
	K7
	K8
	K9
	K10
	K11
	K12
	K13

	// NumKinds stays untyped so it never reads as an enumerator.
	NumKinds = iota
)
