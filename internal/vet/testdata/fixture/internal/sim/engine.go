// The fixture's sanctioned concurrency site: internal/sim/engine.go is
// on the default allowlist, so nothing here is flagged.
package sim

import "sync"

// Engine is the allowlisted worker pool.
type Engine struct {
	mu   sync.Mutex
	jobs chan int
}

// Start spawns the pool.
func (e *Engine) Start() {
	e.jobs = make(chan int, 1)
	go func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		e.jobs <- 0
	}()
}
