// workers.go is NOT on the concurrency allowlist, so every primitive
// here is flagged.
package sim

import "sync"

// Pool duplicates the engine's shape outside the allowlist.
type Pool struct {
	mu   sync.Mutex
	work chan int
}

// Run spins up confined-forbidden concurrency.
func (p *Pool) Run() {
	go func() {
		p.work <- 1
	}()
	<-p.work
}

// Wait blocks forever.
func (p *Pool) Wait() {
	select {}
}
