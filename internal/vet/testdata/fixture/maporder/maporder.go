// Package maporder exercises the map-iteration-order check: loops that
// leak order into output are flagged; collect-then-sort and
// order-insensitive loops are not.
package maporder

import (
	"fmt"
	"sort"
)

// Dump prints while ranging a map: flagged.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Leak returns keys in iteration order: flagged.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Keys is the sanctioned idiom — collect, then sort: clean.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum is order-insensitive: clean.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Audited ranges a map into output but is suppressed with a reason.
func Audited(m map[string]int) []string {
	var out []string
	//dsvet:ok map-order single-key map by construction
	for k := range m {
		out = append(out, k)
	}
	return out
}
