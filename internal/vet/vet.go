// Package vet is a static-analysis suite over the simulator's own Go
// source — the host-side sibling of internal/analysis (which checks
// guest programs). The repo's value proposition is byte-identical
// results across serial/parallel, skip/noskip, observer on/off, and
// fault-inert runs; the invariants behind that guarantee (no wall-clock
// or unseeded randomness in timing paths, no map-iteration-order leaks
// into output, zero-alloc hot loops, exhaustive switches over the stall
// and message-phase taxonomies, goroutines confined to the experiment
// engine) are enforced dynamically by differential tests. dsvet enforces
// them statically, so a violation fails CI before it can flake.
//
// The suite is stdlib-only (go/ast, go/parser, go/types — no x/tools),
// with a small module-aware package loader (loader.go). Diagnostics are
// typed, ordered stably by (file, line, column, class), and rendered as
// text or JSON — the same idiom as internal/analysis and cmd/dslint.
//
// False positives are silenced in place with an audited annotation:
//
//	//dsvet:ok <class> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory; a directive without one is itself a diagnostic. Two more
// directives feed the checks: //dsvet:hotpath on a function declaration
// opts it into the allocation discipline, and //dsvet:enum on a type
// declaration opts its switches into the exhaustiveness discipline.
// The closed set of diagnostic classes is documented in docs/ANALYSIS.md.
package vet

import (
	"fmt"
	"sort"
	"strings"
)

// Class identifies a diagnostic class. The set is closed and documented
// in docs/ANALYSIS.md; golden tests cover one fixture per class.
type Class string

// Diagnostic classes.
const (
	// ClassMapOrder: a range over a map whose body emits output, appends
	// to an outer slice, or enqueues messages, with no subsequent sort of
	// the collected results — map iteration order would leak into output.
	ClassMapOrder Class = "map-order"
	// ClassWallClock: time.Now/Since/Until or math/rand in a timing-path
	// package. Timing must be a pure function of (program, config, seed);
	// randomness comes from the seeded SplitMix64 in internal/stats.
	ClassWallClock Class = "wallclock-rand"
	// ClassHotPathAlloc: an allocation-prone construct (escaping
	// composite literal, closure, string concat/conversion, fmt call,
	// interface boxing, make/new) inside a //dsvet:hotpath function —
	// the static backing for the AllocsPerRun==0 guards.
	ClassHotPathAlloc Class = "hotpath-alloc"
	// ClassExhaustiveSwitch: a switch over a //dsvet:enum type that
	// neither covers every enumerator nor carries a panicking default —
	// adding a 14th stall bucket must fail lint until every consumer is
	// updated.
	ClassExhaustiveSwitch Class = "exhaustive-switch"
	// ClassConfinement: a go statement or raw channel/mutex/atomic use
	// outside the allowlisted files (the experiment-engine worker pool).
	// Everything else must stay single-goroutine so determinism reviews
	// stay local.
	ClassConfinement Class = "goroutine-confinement"
	// ClassExitDiscipline: os.Exit or log.Fatal outside internal/cli and
	// thin package-main wrappers — library code must return errors so the
	// structured exit-code convention (0/1/2/3/4) stays in one place.
	ClassExitDiscipline Class = "exit-discipline"
	// ClassAnnotation: a malformed //dsvet: directive (unknown verb,
	// missing class, or missing reason). Annotations are audited; a
	// directive that cannot be audited is a finding, not a silencer.
	ClassAnnotation Class = "annotation"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Class Class `json:"class"`
	// File is the path relative to the module root.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// String renders "file:line:col: msg [class]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Msg, d.Class)
}

// Report is the result of vetting one package.
type Report struct {
	// Package is the import path.
	Package string       `json:"package"`
	Files   int          `json:"files"`
	Diags   []Diagnostic `json:"diags"`
}

// sortDiags orders diagnostics by (file, line, col, class, msg) — the
// stable-output contract shared with cmd/dslint.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Msg < b.Msg
	})
}

// Config selects which parts of the tree each check bites. Matching is
// by import-path or file-path suffix so the same config covers both the
// real module and the test fixtures.
type Config struct {
	// TimingPackages are import-path suffixes where wallclock-rand
	// applies: the packages whose behavior must be a pure function of
	// (program, config, seed).
	TimingPackages []string
	// ConcurrencyFiles are file-path suffixes where go statements and
	// raw channel/mutex/atomic use are permitted.
	ConcurrencyFiles []string
	// ExitPackages are import-path suffixes where os.Exit/log.Fatal are
	// permitted (package main is always permitted).
	ExitPackages []string
}

// DefaultConfig is the policy for this repository.
func DefaultConfig() Config {
	return Config{
		TimingPackages: []string{
			"internal/emu", "internal/ooo", "internal/core", "internal/bus",
			"internal/cache", "internal/mem", "internal/fault", "internal/sim",
			"internal/traditional",
		},
		// The deterministic worker pool of the experiment engine and the
		// conservative intra-run partitioned loop are the two sanctioned
		// concurrency sites; signal handling in the cmd binaries goes
		// through signal.NotifyContext and needs no raw primitives.
		ConcurrencyFiles: []string{"internal/sim/engine.go", "internal/core/parallel.go"},
		ExitPackages:     []string{"internal/cli"},
	}
}

// hasPathSuffix reports whether path equals suffix or ends in
// "/"+suffix — the matching rule for all Config lists.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func matchesAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

// VetPackage runs every check over one loaded package and returns its
// report with diagnostics stably ordered and //dsvet:ok suppressions
// applied.
func VetPackage(p *Package, cfg Config) *Report {
	r := &Report{Package: p.Path, Files: len(p.Files)}
	var ds []Diagnostic
	ds = append(ds, checkAnnotations(p)...)
	ds = append(ds, checkMapOrder(p)...)
	ds = append(ds, checkWallClock(p, cfg)...)
	ds = append(ds, checkHotPathAlloc(p)...)
	ds = append(ds, checkExhaustiveSwitch(p)...)
	ds = append(ds, checkConfinement(p, cfg)...)
	ds = append(ds, checkExitDiscipline(p, cfg)...)
	r.Diags = p.suppress(ds)
	if r.Diags == nil {
		r.Diags = []Diagnostic{} // marshal as [], not null
	}
	sortDiags(r.Diags)
	return r
}

// Vet loads and vets every package named by patterns (see
// Loader.List) and returns one report per package, ordered by import
// path.
func Vet(l *Loader, patterns []string, cfg Config) ([]*Report, error) {
	paths, err := l.List(patterns)
	if err != nil {
		return nil, err
	}
	reports := make([]*Report, 0, len(paths))
	for _, path := range paths {
		p, err := l.LoadTarget(path)
		if err != nil {
			return nil, fmt.Errorf("vet: %s: %w", path, err)
		}
		reports = append(reports, VetPackage(p, cfg))
	}
	return reports, nil
}

// Count returns the total diagnostics across reports.
func Count(reports []*Report) int {
	n := 0
	for _, r := range reports {
		n += len(r.Diags)
	}
	return n
}
