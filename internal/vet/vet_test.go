package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureReports loads and vets the seeded-violation fixture module
// once per test that needs it.
func fixtureReports(t *testing.T) []*Report {
	t.Helper()
	l, err := NewLoader(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	reports, err := Vet(l, []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	return reports
}

func flatten(reports []*Report) []string {
	var lines []string
	for _, r := range reports {
		for _, d := range r.Diags {
			lines = append(lines, d.String())
		}
	}
	return lines
}

// TestFixtureGolden pins the complete diagnostic output over the
// fixture module. Every diagnostic class has at least one seeded
// violation and at least one clean or suppressed negative, so any
// behavior change in a check shows up as a golden diff.
func TestFixtureGolden(t *testing.T) {
	got := flatten(fixtureReports(t))

	raw, err := os.ReadFile(filepath.Join("testdata", "fixture.golden"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var want []string
	for _, ln := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if ln != "" {
			want = append(want, ln)
		}
	}

	if len(got) != len(want) {
		t.Errorf("got %d diagnostics, want %d", len(got), len(want))
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			t.Errorf("diag %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
	for i := n; i < len(got); i++ {
		t.Errorf("extra diag: %s", got[i])
	}
	for i := n; i < len(want); i++ {
		t.Errorf("missing diag: %s", want[i])
	}
}

// TestFixtureCoversEveryClass proves each diagnostic class is live:
// every class the analyzer can emit appears in the fixture output, so
// a check that silently stops firing fails here even if the golden
// file were regenerated carelessly.
func TestFixtureCoversEveryClass(t *testing.T) {
	seen := map[Class]bool{}
	for _, r := range fixtureReports(t) {
		for _, d := range r.Diags {
			seen[d.Class] = true
		}
	}
	for _, c := range []Class{
		ClassMapOrder, ClassWallClock, ClassHotPathAlloc,
		ClassExhaustiveSwitch, ClassConfinement, ClassExitDiscipline,
		ClassAnnotation,
	} {
		if !seen[c] {
			t.Errorf("class %s produced no fixture diagnostics", c)
		}
	}
}

// TestNewEnumeratorIsCaught is the acceptance scenario from the issue:
// the fixture's obs.StallKind has a 14th enumerator (K13) that one
// cross-package consumer switch does not cover, and exhaustive-switch
// must flag exactly that.
func TestNewEnumeratorIsCaught(t *testing.T) {
	var hits []string
	for _, r := range fixtureReports(t) {
		for _, d := range r.Diags {
			if d.Class == ClassExhaustiveSwitch && strings.Contains(d.Msg, "K13") {
				hits = append(hits, d.String())
			}
		}
	}
	if len(hits) == 0 {
		t.Fatal("no exhaustive-switch diagnostic mentions the uncovered 14th enumerator K13")
	}
	for _, h := range hits {
		if !strings.Contains(h, "internal/core/consume.go") {
			t.Errorf("K13 diagnostic attributed to the wrong file: %s", h)
		}
	}
}

// TestRepoSelfClean runs the analyzer over its own repository: the
// committed tree must have zero findings, matching the CI gate.
func TestRepoSelfClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", root, err)
	}
	reports, err := Vet(l, []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if n := Count(reports); n != 0 {
		for _, r := range reports {
			for _, d := range r.Diags {
				t.Errorf("%s: %s", r.Package, d.String())
			}
		}
		t.Fatalf("repo is not self-clean: %d finding(s)", n)
	}
	if len(reports) < 20 {
		t.Errorf("only %d packages vetted; expected the whole module", len(reports))
	}
}

func TestHasPathSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"internal/emu", "internal/emu", true},
		{"example.com/fixture/internal/emu", "internal/emu", true},
		{"github.com/x/ds/internal/sim/engine.go", "internal/sim/engine.go", true},
		{"internal/emulator", "internal/emu", false},
		{"myinternal/emu", "internal/emu", false},
		{"internal/emu/sub", "internal/emu", false},
	}
	for _, c := range cases {
		if got := hasPathSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("hasPathSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

// TestLoaderList checks pattern expansion over the fixture module.
func TestLoaderList(t *testing.T) {
	l, err := NewLoader(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	all, err := l.List([]string{"./..."})
	if err != nil {
		t.Fatalf("List(./...): %v", err)
	}
	if len(all) != 9 {
		t.Errorf("List(./...) = %d packages, want 9: %v", len(all), all)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Errorf("List output not sorted/deduped at %d: %v", i, all)
		}
	}
	one, err := l.List([]string{"./internal/emu"})
	if err != nil {
		t.Fatalf("List(./internal/emu): %v", err)
	}
	if len(one) != 1 || !strings.HasSuffix(one[0], "internal/emu") {
		t.Errorf("List(./internal/emu) = %v", one)
	}
	if _, err := l.List([]string{"./no/such/dir"}); err == nil {
		t.Error("List of a missing directory should fail")
	}
}
