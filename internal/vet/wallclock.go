package vet

import (
	"go/ast"
	"strconv"
)

// checkWallClock flags wall-clock reads (time.Now/Since/Until) and any
// use of the global math/rand generators inside the timing-path
// packages. Simulated time must be a pure function of (program, config,
// seed): wall-clock smuggles host scheduling into results, and
// math/rand's stream is neither seeded by us nor stable across Go
// releases — randomness comes from the seeded SplitMix64 in
// internal/stats.
func checkWallClock(p *Package, cfg Config) []Diagnostic {
	if !matchesAny(p.Path, cfg.TimingPackages) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Syntax {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, p.diag(ClassWallClock, imp.Pos(),
					"import of "+path+" in a timing-path package (use the seeded SplitMix64 in internal/stats)"))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			switch obj.Name() {
			case "Now", "Since", "Until":
				out = append(out, p.diag(ClassWallClock, id.Pos(),
					"time."+obj.Name()+" in a timing-path package (timing must be a pure function of program, config, and seed)"))
			}
			return true
		})
	}
	return out
}
