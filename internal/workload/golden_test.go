package workload

import (
	"testing"

	"github.com/wisc-arch/datascalar/internal/emu"
	"github.com/wisc-arch/datascalar/internal/trace"
)

// golden pins each kernel's dynamic behaviour at scale 1: total
// instruction count, steady-state load/store counts over the first 400 k
// measured instructions, and L1 misses under the Table 1 cache. The
// kernels are deterministic, so these are exact; a mismatch means a
// kernel was edited, which invalidates EXPERIMENTS.md and requires
// regenerating its numbers (see that file) as well as this table.
type goldenRow struct {
	Instr, Loads, Stores, Misses uint64
}

var golden = map[string]goldenRow{
	"applu":    {Instr: 614362, Loads: 84210, Stores: 21051, Misses: 26320},
	"compress": {Instr: 2200687, Loads: 44447, Stores: 44422, Misses: 22335},
	"fpppp":    {Instr: 267509, Loads: 61440, Stores: 15360, Misses: 256},
	"gcc":      {Instr: 1880359, Loads: 79454, Stores: 2837, Misses: 12700},
	"go":       {Instr: 1135677, Loads: 64872, Stores: 10867, Misses: 1487},
	"hydro2d":  {Instr: 622081, Loads: 103219, Stores: 51609, Misses: 27184},
	"li":       {Instr: 1778421, Loads: 114124, Stores: 512, Misses: 49960},
	"m88ksim":  {Instr: 1434454, Loads: 34000, Stores: 15088, Misses: 10287},
	"mgrid":    {Instr: 563762, Loads: 113909, Stores: 16272, Misses: 16586},
	"perl":     {Instr: 3354712, Loads: 49197, Stores: 2893, Misses: 6030},
	"swim":     {Instr: 1007640, Loads: 72726, Stores: 72726, Misses: 27273},
	"tomcatv":  {Instr: 354650, Loads: 85576, Stores: 31760, Misses: 16256},
	"turb3d":   {Instr: 548897, Loads: 72724, Stores: 72722, Misses: 9339},
	"vortex":   {Instr: 661870, Loads: 48000, Stores: 48000, Misses: 19084},
	"wave5":    {Instr: 442390, Loads: 73728, Stores: 49152, Misses: 35985},
}

func TestWorkloadGoldens(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, ok := golden[w.Name]
			if !ok {
				t.Fatalf("no golden row; add one")
			}
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			m, err := emu.New(p)
			if err != nil {
				t.Fatal(err)
			}
			n, err := m.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if n != want.Instr {
				t.Errorf("instructions = %d, want %d", n, want.Instr)
			}
			var loads, stores uint64
			a := trace.NewTrafficAnalyzer(trace.DefaultTrafficConfig())
			err = trace.ForEachRefFrom(p, p.Labels["bench_main"], 400_000, false, func(r trace.Ref) error {
				if r.Store {
					stores++
				} else {
					loads++
				}
				return a.Observe(r)
			})
			if err != nil {
				t.Fatal(err)
			}
			if loads != want.Loads || stores != want.Stores {
				t.Errorf("loads/stores = %d/%d, want %d/%d", loads, stores, want.Loads, want.Stores)
			}
			if got := a.Finish().Misses; got != want.Misses {
				t.Errorf("misses = %d, want %d", got, want.Misses)
			}
		})
	}
}

// warmupGolden pins the fast-forward (warmup) instruction count from
// program start to each timing kernel's bench_main label. The warmup
// runs through emu.Step's predecoded-fetch and page-cache fast paths, so
// these exact counts double as a functional-equivalence check on those
// paths: any divergence from the general fetch path would shift them.
var warmupGolden = map[string]uint64{
	"applu":    147462,
	"compress": 442371,
	"go":       26337,
	"mgrid":    131715,
	"turb3d":   98307,
	"wave5":    122885,
}

func TestWarmupInstructionGoldens(t *testing.T) {
	for _, w := range TimingSet() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, ok := warmupGolden[w.Name]
			if !ok {
				t.Fatalf("no warmup golden; add one")
			}
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			ff, ok := p.Labels["bench_main"]
			if !ok {
				t.Fatal("no bench_main label")
			}
			m, err := emu.New(p)
			if err != nil {
				t.Fatal(err)
			}
			n, reached, err := m.RunUntilPC(ff, 200_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !reached {
				t.Fatalf("never reached bench_main after %d instructions", n)
			}
			if n != want {
				t.Errorf("warmup instructions = %d, want %d", n, want)
			}
		})
	}
}
