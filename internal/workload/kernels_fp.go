package workload

import "fmt"

// The floating-point suite. Sizes are chosen so data sets exceed the
// 16 KB L1 by an order of magnitude (as SPEC95's did in 1995-era caches)
// while dynamic instruction counts stay in the hundreds of thousands at
// scale 1.

func init() {
	register(Workload{
		Name:  "tomcatv",
		Class: FP,
		Regime: "2-D vectorized mesh generation: five-point stencils over " +
			"two 64x64 grids with a result pass. High spatial locality, " +
			"read-mostly, long sequential runs per grid row.",
		source: tomcatvSource,
	})
	register(Workload{
		Name:  "swim",
		Class: FP,
		Regime: "shallow-water model: c[i] = a[i] op b[i] sweeps over three " +
			"interleaved grids. The interleaving cuts datathreads short " +
			"(Table 2 shows swim's data threads near the minimum).",
		source: swimSource,
	})
	register(Workload{
		Name:  "hydro2d",
		Class: FP,
		Regime: "Navier-Stokes hydrodynamics: alternating row-order and " +
			"column-order sweeps over a 2-D grid; the column pass strides " +
			"a full row per access, defeating line reuse.",
		source: hydro2dSource,
	})
	register(Workload{
		Name:   "mgrid",
		Class:  FP,
		Timing: true,
		Regime: "3-D multigrid relaxation: seven-point stencil over a " +
			"28^3 grid; plane-sized strides give poor locality and short " +
			"data threads, the regime where the paper's mgrid loses at " +
			"2 nodes.",
		source: mgridSource,
	})
	register(Workload{
		Name:   "applu",
		Class:  FP,
		Timing: true,
		Regime: "LU solver: first-order recurrences (x[i] depends on " +
			"x[i-1], x[i-2]) over five banded-system arrays — serial " +
			"dependence chains sweeping sequentially through memory.",
		source: appluSource,
	})
	register(Workload{
		Name:   "turb3d",
		Class:  FP,
		Timing: true,
		Regime: "turbulence FFT: butterfly passes with large power-of-two " +
			"strides over a 64 K-word line; each pass touches two lines " +
			"far apart, alternating node ownership (short data threads).",
		source: turb3dSource,
	})
	register(Workload{
		Name:  "fpppp",
		Class: FP,
		Regime: "quantum chemistry: enormous basic blocks of dense FP on a " +
			"small working set — low miss rate, compute-bound, so memory " +
			"system choice matters least.",
		source: fppppSource,
	})
	register(Workload{
		Name:   "wave5",
		Class:  FP,
		Timing: true,
		Regime: "particle-in-cell plasma: sequential particle array with " +
			"gather/scatter into a large grid at pseudo-random indices — " +
			"mixed streaming and irregular access, store-rich.",
		source: wave5Source,
	})
}

// tomcatv: two N x N grids, stencil into result grids, then copy back.
func tomcatvSource(scale int) string {
	n := 64
	iters := 2 * scale
	bytes := n * n * 8
	return fmt.Sprintf(`
# tomcatv analogue: five-point stencils over two grids.
        .data
ax:     .space %[1]d
        .space 288               # pad: avoid same-set aliasing across arrays
ay:     .space %[1]d
        .space 544
rx:     .space %[1]d
        .space 800
ry:     .space %[1]d
        .text
        # ---- init: ax[i] = i, ay[i] = 2i (linear fill) ----
        la   r1, ax
        la   r2, ay
        li   r3, %[2]d           # total words
        li   r4, 0
init:   fcvtdw f1, r4
        fsd  f1, 0(r1)
        fadd f2, f1, f1
        fsd  f2, 0(r2)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r4, r4, 1
        bne  r4, r3, init

bench_main:
        li   r20, %[3]d          # outer iterations
outer:
        # ---- stencil pass: interior rows 1..N-2 ----
        li   r5, 1               # i
rowlp:  # row base offsets: cur = i*N*8
        li   r6, %[4]d           # N*8 row stride
        mul  r7, r5, r6          # cur row byte offset
        la   r8, ax
        add  r8, r8, r7          # &ax[i][0]
        la   r9, rx
        add  r9, r9, r7          # &rx[i][0]
        la   r10, ay
        add  r10, r10, r7
        la   r11, ry
        add  r11, r11, r7
        li   r12, 1              # j
collp:  slli r13, r12, 3
        add  r14, r8, r13        # &ax[i][j]
        fld  f1, -8(r14)         # west
        fld  f2, 8(r14)          # east
        li   r15, %[4]d
        sub  r16, r14, r15
        fld  f3, 0(r16)          # north
        add  r16, r14, r15
        fld  f4, 0(r16)          # south
        fadd f5, f1, f2
        fadd f6, f3, f4
        fadd f5, f5, f6
        fld  f7, 0(r14)          # centre
        fsub f5, f5, f7
        add  r16, r9, r13
        fsd  f5, 0(r16)          # rx[i][j]
        # same stencil on ay -> ry
        add  r14, r10, r13
        fld  f1, -8(r14)
        fld  f2, 8(r14)
        sub  r16, r14, r15
        fld  f3, 0(r16)
        add  r16, r14, r15
        fld  f4, 0(r16)
        fadd f5, f1, f2
        fadd f6, f3, f4
        fadd f5, f5, f6
        add  r16, r11, r13
        fsd  f5, 0(r16)
        addi r12, r12, 1
        li   r16, %[5]d          # N-1
        bne  r12, r16, collp
        addi r5, r5, 1
        bne  r5, r16, rowlp

        # ---- copy results back (second sequential pass) ----
        la   r1, rx
        la   r2, ax
        la   r3, ry
        la   r4, ay
        li   r5, %[2]d
copy:   fld  f1, 0(r1)
        fsd  f1, 0(r2)
        fld  f2, 0(r3)
        fsd  f2, 0(r4)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, 8
        addi r4, r4, 8
        addi r5, r5, -1
        bne  r5, zero, copy

        addi r20, r20, -1
        bne  r20, zero, outer
        halt
`, bytes, n*n, iters, n*8, n-1)
}

// swim: u[i] = v[i] + w[i]; v[i] = u[i] * w[i] over three big arrays.
func swimSource(scale int) string {
	words := 24 * 1024 // 192 KB per array triple
	iters := 3 * scale
	return fmt.Sprintf(`
# swim analogue: interleaved three-array sweeps.
        .data
u:      .space %[1]d
        .space 288               # pad: avoid same-set aliasing across arrays
v:      .space %[1]d
        .space 544
w:      .space %[1]d
        .text
        # init v and w linearly
        la   r1, v
        la   r2, w
        li   r3, %[2]d
        li   r4, 1
init:   fcvtdw f1, r4
        fsd  f1, 0(r1)
        fsd  f1, 0(r2)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r4, r4, 1
        addi r3, r3, -1
        bne  r3, zero, init

bench_main:
        li   r20, %[3]d
outer:  la   r1, u
        la   r2, v
        la   r3, w
        li   r4, %[2]d
sweep:  fld  f1, 0(r2)
        fld  f2, 0(r3)
        fadd f3, f1, f2
        fsd  f3, 0(r1)
        fmul f4, f3, f2
        fsd  f4, 0(r2)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, 8
        addi r4, r4, -1
        bne  r4, zero, sweep
        addi r20, r20, -1
        bne  r20, zero, outer
        halt
`, words*8, words, iters)
}

// hydro2d: row sweep then column sweep over one grid.
func hydro2dSource(scale int) string {
	n := 128 // 128x128 doubles = 128 KB
	iters := 2 * scale
	return fmt.Sprintf(`
# hydro2d analogue: row-order then column-order passes.
        .data
g:      .space %[1]d
        .text
        la   r1, g
        li   r2, %[2]d
        li   r3, 3
init:   fcvtdw f1, r3
        fsd  f1, 0(r1)
        addi r1, r1, 8
        addi r3, r3, 7
        addi r2, r2, -1
        bne  r2, zero, init

bench_main:
        li   r20, %[3]d
outer:
        # row-order: g[i] = g[i] * 0.5 + g[i+1]
        la   r1, g
        li   r2, %[4]d           # N*N - 1
rows:   fld  f1, 0(r1)
        fld  f2, 8(r1)
        fadd f3, f1, f2
        fsd  f3, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, rows
        # column-order: stride N*8 through each column
        li   r5, 0               # column
cols:   la   r1, g
        slli r6, r5, 3
        add  r1, r1, r6          # &g[0][col]
        li   r2, %[5]d           # N-1 steps down the column
coldn:  fld  f1, 0(r1)
        li   r7, %[6]d
        add  r8, r1, r7
        fld  f2, 0(r8)
        fadd f3, f1, f2
        fsd  f3, 0(r1)
        mov  r1, r8
        addi r2, r2, -1
        bne  r2, zero, coldn
        addi r5, r5, 1
        li   r7, %[7]d
        bne  r5, r7, cols
        addi r20, r20, -1
        bne  r20, zero, outer
        halt
`, n*n*8, n*n, iters, n*n-1, n-1, n*8, n)
}

// mgrid: seven-point stencil over a 3-D grid.
func mgridSource(scale int) string {
	n := 28 // 28^3 * 8 = ~172 KB
	iters := 1 * scale
	plane := n * n * 8
	row := n * 8
	inner := n - 2
	return fmt.Sprintf(`
# mgrid analogue: 3-D seven-point stencil.
        .data
v3:     .space %[1]d
        .space 288               # pad: avoid same-set aliasing across arrays
r3:     .space %[1]d
        .text
        la   r1, v3
        li   r2, %[2]d
        li   r3, 1
init:   fcvtdw f1, r3
        fsd  f1, 0(r1)
        addi r1, r1, 8
        addi r3, r3, 3
        addi r2, r2, -1
        bne  r2, zero, init

bench_main:
        li   r20, %[3]d
outer:  li   r4, 1               # k plane
plk:    li   r5, 1               # i row
pli:    # base = ((k*N + i)*N + 1)*8
        li   r6, %[4]d
        mul  r7, r4, r6          # k*plane
        li   r8, %[5]d
        mul  r9, r5, r8          # i*row
        add  r7, r7, r9
        la   r10, v3
        add  r10, r10, r7
        addi r10, r10, 8         # j=1
        la   r11, r3
        add  r11, r11, r7
        addi r11, r11, 8
        li   r12, %[6]d          # inner count
plj:    fld  f1, -8(r10)
        fld  f2, 8(r10)
        li   r13, %[5]d
        sub  r14, r10, r13
        fld  f3, 0(r14)
        add  r14, r10, r13
        fld  f4, 0(r14)
        li   r13, %[4]d
        sub  r14, r10, r13
        fld  f5, 0(r14)
        add  r14, r10, r13
        fld  f6, 0(r14)
        fadd f7, f1, f2
        fadd f8, f3, f4
        fadd f9, f5, f6
        fadd f7, f7, f8
        fadd f7, f7, f9
        fld  f8, 0(r10)
        fsub f7, f7, f8
        fsd  f7, 0(r11)
        addi r10, r10, 8
        addi r11, r11, 8
        addi r12, r12, -1
        bne  r12, zero, plj
        addi r5, r5, 1
        li   r13, %[7]d
        bne  r5, r13, pli
        addi r4, r4, 1
        bne  r4, r13, plk
        addi r20, r20, -1
        bne  r20, zero, outer
        halt
`, n*n*n*8, n*n*n, iters, plane, row, inner, n-1)
}

// applu: forward/backward first-order recurrences over banded arrays.
func appluSource(scale int) string {
	m := 12 * 1024 // 12 K doubles per array, 5 arrays = 480 KB
	iters := 2 * scale
	return fmt.Sprintf(`
# applu analogue: banded-solver recurrences.
        .data
bl0:    .space %[1]d
        .space 288               # pad: avoid same-set aliasing across arrays
bl1:    .space %[1]d
        .space 544
bd:     .space %[1]d
        .space 800
bb:     .space %[1]d
        .space 1056
bx:     .space %[1]d
        .text
        la   r1, bl0
        la   r2, bl1
        la   r3, bd
        la   r4, bb
        li   r5, %[2]d
        li   r6, 2
init:   fcvtdw f1, r6
        fsd  f1, 0(r1)
        fsd  f1, 0(r2)
        fsd  f1, 0(r3)
        fsd  f1, 0(r4)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, 8
        addi r4, r4, 8
        addi r6, r6, 5
        addi r5, r5, -1
        bne  r5, zero, init

bench_main:
        li   r20, %[3]d
outer:
        # forward: x[i] = (b[i] - l0[i]*x[i-1] - l1[i]*x[i-2]) / d[i]
        la   r1, bl0
        addi r1, r1, 16
        la   r2, bl1
        addi r2, r2, 16
        la   r3, bd
        addi r3, r3, 16
        la   r4, bb
        addi r4, r4, 16
        la   r5, bx
        addi r5, r5, 16
        fld  f10, -8(r5)         # x[i-1]
        fld  f11, -16(r5)        # x[i-2]
        li   r6, %[4]d           # M-2 steps
fwd:    fld  f1, 0(r1)
        fld  f2, 0(r2)
        fld  f3, 0(r3)
        fld  f4, 0(r4)
        fmul f5, f1, f10
        fmul f6, f2, f11
        fsub f7, f4, f5
        fsub f7, f7, f6
        fmul f8, f7, f3          # multiply by precomputed reciprocal pivot
        fsd  f8, 0(r5)
        fmov f11, f10
        fmov f10, f8
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, 8
        addi r4, r4, 8
        addi r5, r5, 8
        addi r6, r6, -1
        bne  r6, zero, fwd
        addi r20, r20, -1
        bne  r20, zero, outer
        halt
`, m*8, m, iters, m-2)
}

// turb3d: butterfly passes with large power-of-two strides.
func turb3dSource(scale int) string {
	words := 16 * 1024 // 128 KB
	passes := 1 * scale
	return fmt.Sprintf(`
# turb3d analogue: FFT-style butterflies at large strides.
        .data
sig:    .space %[1]d
        .text
        la   r1, sig
        li   r2, %[2]d
        li   r3, 9
init:   fcvtdw f1, r3
        fsd  f1, 0(r1)
        addi r1, r1, 8
        addi r3, r3, 11
        addi r2, r2, -1
        bne  r2, zero, init

bench_main:
        li   r20, %[3]d
pass:   li   r10, 4096           # stride bytes, halves each stage
stage:  la   r1, sig
        li   r2, 0               # pair index
bfly:   add  r3, r1, r10
        fld  f1, 0(r1)
        fld  f2, 0(r3)
        fadd f3, f1, f2
        fsub f4, f1, f2
        fsd  f3, 0(r1)
        fsd  f4, 0(r3)
        addi r1, r1, 8
        addi r2, r2, 1
        li   r4, 8192            # pairs per stage: cover half the array
        bne  r2, r4, bfly
        srli r10, r10, 1
        li   r4, 256
        bge  r10, r4, stage
        addi r20, r20, -1
        bne  r20, zero, pass
        halt
`, words*8, words, passes)
}

// fpppp: dense unrolled FP over a cache-resident working set.
func fppppSource(scale int) string {
	words := 1024 // 8 KB: mostly fits in L1
	iters := 60 * scale
	return fmt.Sprintf(`
# fpppp analogue: huge basic blocks of dense FP, small working set.
        .data
wk:     .space %[1]d
        .text
        la   r1, wk
        li   r2, %[2]d
        li   r3, 1
init:   fcvtdw f1, r3
        fsd  f1, 0(r1)
        addi r1, r1, 8
        addi r3, r3, 1
        addi r2, r2, -1
        bne  r2, zero, init

bench_main:
        li   r20, %[3]d
outer:  la   r1, wk
        li   r2, %[4]d           # words/4 per block pass
blk:    fld  f1, 0(r1)
        fld  f2, 8(r1)
        fld  f3, 16(r1)
        fld  f4, 24(r1)
        fmul f5, f1, f2
        fadd f6, f3, f4
        fmul f7, f5, f6
        fadd f8, f7, f1
        fmul f9, f8, f2
        fadd f10, f9, f3
        fmul f11, f10, f4
        fadd f12, f11, f5
        fdiv f13, f12, f6
        fsd  f13, 0(r1)
        addi r1, r1, 32
        addi r2, r2, -1
        bne  r2, zero, blk
        addi r20, r20, -1
        bne  r20, zero, outer
        halt
`, words*8, words, iters, words/4)
}

// wave5: particle gather/scatter into a large grid.
func wave5Source(scale int) string {
	gridWords := 32 * 1024 // 256 KB grid
	particles := 8 * 1024  // 64 KB particle array
	iters := 3 * scale
	return fmt.Sprintf(`
# wave5 analogue: particle-in-cell gather/scatter.
        .data
grid:   .space %[1]d
        .space 288               # pad: avoid same-set aliasing across arrays
pidx:   .space %[2]d             # particle cell indices (words)
        .space 544
pval:   .space %[2]d             # particle charge (doubles)
        .text
        # init particle indices with an LCG, values linearly
        la   r1, pidx
        la   r2, pval
        li   r3, %[3]d
        li   r4, 88172645463325252   # LCG state
        li   r9, 1
init:   li   r5, 6364136223846793005
        mul  r4, r4, r5
        li   r5, 1442695040888963407
        add  r4, r4, r5
        srli r6, r4, 17
        li   r7, %[4]d           # grid word mask (power of two - 1)
        and  r6, r6, r7
        sd   r6, 0(r1)
        fcvtdw f1, r9
        fsd  f1, 0(r2)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r9, r9, 1
        addi r3, r3, -1
        bne  r3, zero, init

bench_main:
        li   r20, %[5]d
step:   la   r1, pidx
        la   r2, pval
        li   r3, %[3]d
part:   ld   r4, 0(r1)           # cell index
        slli r4, r4, 3
        la   r5, grid
        add  r5, r5, r4
        fld  f1, 0(r5)           # gather
        fld  f2, 0(r2)
        fadd f3, f1, f2
        fsd  f3, 0(r5)           # scatter
        fsd  f1, 0(r2)           # particle remembers field
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, -1
        bne  r3, zero, part
        addi r20, r20, -1
        bne  r20, zero, step
        halt
`, gridWords*8, particles*8, particles, gridWords-1, iters)
}
