package workload

import "fmt"

// The integer suite. Pseudo-random inputs come from in-kernel LCGs so
// every run is deterministic and self-contained.

func init() {
	register(Workload{
		Name:   "go",
		Class:  Int,
		Timing: true,
		Regime: "game-tree evaluation: branchy neighbor inspections over a " +
			"board and history array — small-ish working set, irregular " +
			"short-distance accesses, very low store fraction.",
		source: goSource,
	})
	register(Workload{
		Name:   "compress",
		Class:  Int,
		Timing: true,
		Regime: "LZW dictionary compression: hash-probe loads into a 256 KB " +
			"table plus an output store per input byte — stores nearly " +
			"match loads, the regime where ESP's write elimination wins " +
			"biggest (Figure 7).",
		source: compressSource,
	})
	register(Workload{
		Name:  "li",
		Class: Int,
		Regime: "lisp interpreter: cons-cell pointer chasing over a small, " +
			"heavily re-referenced heap — the data set that profits most " +
			"from replication (Table 2 shows li's threads among the " +
			"longest).",
		source: liSource,
	})
	register(Workload{
		Name:  "perl",
		Class: Int,
		Regime: "script interpreter: byte-string hashing with bucket-table " +
			"updates and data-dependent dispatch — irregular loads over a " +
			"medium table, moderate stores.",
		source: perlSource,
	})
	register(Workload{
		Name:  "gcc",
		Class: Int,
		Regime: "compiler: root-to-leaf walks over pointer-linked tree " +
			"nodes in a 256 KB arena — read-mostly, dependence-chained, " +
			"low spatial locality.",
		source: gccSource,
	})
	register(Workload{
		Name:  "m88ksim",
		Class: Int,
		Regime: "CPU simulator: fetch-decode-execute interpreter over a " +
			"synthetic guest program — sequential guest text, random " +
			"guest data, table-driven control.",
		source: m88ksimSource,
	})
	register(Workload{
		Name:  "vortex",
		Class: Int,
		Regime: "object database: record lookups by index with multi-field " +
			"reads and in-place updates plus sequential journal appends — " +
			"store-rich with mixed regular/irregular access.",
		source: vortexSource,
	})
}

// go: board neighbor evaluation with branchy control.
func goSource(scale int) string {
	side := 64 // 64x64 words = 32 KB board
	moves := 30000 * scale
	return fmt.Sprintf(`
# go analogue: board evaluation with neighbor counting.
        .data
board:  .space %[1]d
        .space 288               # pad: avoid same-set aliasing across arrays
hist:   .space %[1]d
        .text
        # sparse init: every 7th point gets a stone of alternating color
        la   r1, board
        li   r2, %[2]d
        li   r3, 0
binit:  li   r4, 7
        rem  r5, r3, r4
        bne  r5, zero, bskip
        andi r6, r3, 1
        addi r6, r6, 1           # stone color 1 or 2
        sd   r6, 0(r1)
bskip:  addi r1, r1, 8
        addi r3, r3, 1
        bne  r3, r2, binit

bench_main:
        li   r20, %[3]d          # moves
        li   r10, 123456789      # LCG state
        li   r21, 0              # moves left in current region
        li   r22, 0              # region base point
move:   li   r11, 1103515245
        mul  r10, r10, r11
        addi r10, r10, 12345
        bne  r21, zero, inregion
        # Pick a new region every 32 moves: real game evaluation works a
        # local fight, giving the spatial locality uniform random points
        # lack.
        srli r22, r10, 16
        li   r13, %[4]d          # interior mask
        and  r22, r22, r13
        li   r21, 32
inregion:
        addi r21, r21, -1
        srli r12, r10, 24
        andi r12, r12, 255       # point within the region's 256-point span
        add  r12, r12, r22
        li   r13, %[4]d
        and  r12, r12, r13
        addi r12, r12, %[5]d     # keep off the rim
        slli r14, r12, 3
        la   r15, board
        add  r15, r15, r14       # &board[p]
        # count occupied neighbors (n,s,e,w)
        li   r16, 0
        ld   r17, -8(r15)
        beq  r17, zero, gow
        addi r16, r16, 1
gow:    ld   r17, 8(r15)
        beq  r17, zero, goe
        addi r16, r16, 1
goe:    li   r18, %[6]d
        sub  r19, r15, r18
        ld   r17, 0(r19)
        beq  r17, zero, gon
        addi r16, r16, 1
gon:    add  r19, r15, r18
        ld   r17, 0(r19)
        beq  r17, zero, gos
        addi r16, r16, 1
gos:    # play on empty points with < 4 neighbors; else record ko
        ld   r17, 0(r15)
        bne  r17, zero, occupied
        li   r18, 4
        beq  r16, r18, occupied
        andi r17, r10, 1
        addi r17, r17, 1
        sd   r17, 0(r15)         # place stone
        b    hrec
occupied:
hrec:   la   r18, hist
        add  r18, r18, r14
        ld   r19, 0(r18)
        add  r19, r19, r16
        sd   r19, 0(r18)         # history update
        addi r20, r20, -1
        bne  r20, zero, move
        halt
`, side*side*8, side*side, moves,
		(side-2)*(side-2)-1, side+1, side*8)
}

// compress: hash-probe dictionary with per-byte output stores.
func compressSource(scale int) string {
	inputBytes := 48 * 1024
	tabWords := 32 * 1024 // 256 KB table
	passes := 2 * scale
	return fmt.Sprintf(`
# compress analogue: LZW-style hashing, store-rich.
        .data
input:  .space %[1]d
        .space 288               # pad: avoid same-set aliasing across arrays
        .align 8
htab:   .space %[2]d
        .space 544
outb:   .space %[1]d
        .text
        # generate input bytes with an LCG
        la   r1, input
        li   r2, %[3]d
        li   r3, 77777
ginit:  li   r4, 1103515245
        mul  r3, r3, r4
        addi r3, r3, 12345
        srli r5, r3, 16
        andi r5, r5, 255
        sb   r5, 0(r1)
        addi r1, r1, 1
        addi r2, r2, -1
        bne  r2, zero, ginit

bench_main:
        li   r20, %[4]d
pass:   la   r1, input
        la   r11, outb
        li   r2, %[3]d
        li   r10, 0              # rolling hash
byte:   lbu  r3, 0(r1)
        # h = (h*33 + c) & (tabWords-1)
        slli r4, r10, 5
        add  r4, r4, r10
        add  r4, r4, r3
        li   r5, %[5]d
        and  r10, r4, r5
        # probe dictionary
        slli r6, r10, 3
        la   r7, htab
        add  r7, r7, r6
        ld   r8, 0(r7)
        addi r9, r3, 1           # encoded symbol
        beq  r8, r9, hit
        sd   r9, 0(r7)           # install new entry (store)
hit:    sb   r3, 0(r11)          # emit output byte (store)
        addi r11, r11, 1
        addi r1, r1, 1
        addi r2, r2, -1
        bne  r2, zero, byte
        addi r20, r20, -1
        bne  r20, zero, pass
        halt
`, inputBytes, tabWords*8, inputBytes, passes, tabWords-1)
}

// li: cons-cell chains over a small hot heap.
func liSource(scale int) string {
	cells := 4096 // 64 KB of 16-byte cells
	walks := 60 * scale
	return fmt.Sprintf(`
# li analogue: cons-cell pointer chasing, hot small heap.
        .data
heap:   .space %[1]d
        .text
        # link cell i -> (i*17+7) mod N (a permutation when N is a power
        # of two and the multiplier is odd), car = i
        la   r1, heap
        li   r2, 0
cinit:  sd   r2, 0(r1)           # car
        li   r3, 17
        mul  r4, r2, r3
        addi r4, r4, 7
        li   r5, %[2]d
        and  r4, r4, r5
        slli r4, r4, 4
        la   r6, heap
        add  r6, r6, r4
        sd   r6, 8(r1)           # cdr
        addi r1, r1, 16
        addi r2, r2, 1
        li   r3, %[3]d
        bne  r2, r3, cinit

bench_main:
        li   r20, %[4]d          # walks
        li   r12, 0              # accumulated sum
walk:   la   r1, heap
        li   r2, %[3]d           # steps per walk
chase:  ld   r3, 0(r1)           # car
        add  r12, r12, r3
        andi r4, r3, 15
        bne  r4, zero, nocons
        sd   r12, 0(r1)          # occasional rplaca (store)
nocons: ld   r1, 8(r1)           # cdr chase
        addi r2, r2, -1
        bne  r2, zero, chase
        addi r20, r20, -1
        bne  r20, zero, walk
        halt
`, cells*16, cells-1, cells, walks)
}

// perl: byte-string hashing with bucket updates and dispatch.
func perlSource(scale int) string {
	strBytes := 64 * 1024
	buckets := 8 * 1024 // 64 KB bucket table
	ops := 20000 * scale
	return fmt.Sprintf(`
# perl analogue: string hashing + bucket-table updates + dispatch.
        .data
strs:   .space %[1]d
        .align 8
bukt:   .space %[2]d
        .text
        la   r1, strs
        li   r2, %[3]d
        li   r3, 31337
sinit:  li   r4, 1103515245
        mul  r3, r3, r4
        addi r3, r3, 12345
        srli r5, r3, 16
        andi r5, r5, 255
        sb   r5, 0(r1)
        addi r1, r1, 1
        addi r2, r2, -1
        bne  r2, zero, sinit

bench_main:
        li   r20, %[4]d
        li   r10, 424242         # LCG state
op:     li   r11, 1103515245
        mul  r10, r10, r11
        addi r10, r10, 12345
        srli r12, r10, 16
        li   r13, %[5]d          # string start mask
        and  r12, r12, r13
        la   r14, strs
        add  r14, r14, r12       # string pointer
        # hash 16 bytes
        li   r15, 16
        li   r16, 5381
hash:   lbu  r17, 0(r14)
        slli r18, r16, 5
        add  r16, r18, r16
        add  r16, r16, r17
        addi r14, r14, 1
        addi r15, r15, -1
        bne  r15, zero, hash
        li   r18, %[6]d
        and  r16, r16, r18       # bucket index
        slli r17, r16, 3
        la   r18, bukt
        add  r18, r18, r17
        # dispatch on hash low bits
        andi r19, r16, 3
        li   r15, 1
        beq  r19, r15, dinc2
        li   r15, 2
        beq  r19, r15, dxor
        li   r15, 3
        beq  r19, r15, dneg
        ld   r15, 0(r18)         # default: increment
        addi r15, r15, 1
        sd   r15, 0(r18)
        b    next
dinc2:  ld   r15, 0(r18)
        addi r15, r15, 2
        sd   r15, 0(r18)
        b    next
dxor:   ld   r15, 0(r18)
        xor  r15, r15, r16
        sd   r15, 0(r18)
        b    next
dneg:   ld   r15, 0(r18)
        sub  r15, zero, r15
        sd   r15, 0(r18)
next:   addi r20, r20, -1
        bne  r20, zero, op
        halt
`, strBytes, buckets*8, strBytes, ops, strBytes-64-1, buckets-1)
}

// gcc: root-to-leaf walks over linked tree nodes.
func gccSource(scale int) string {
	nodes := 8 * 1024 // 256 KB of 32-byte nodes
	walks := 12000 * scale
	return fmt.Sprintf(`
# gcc analogue: pointer-linked tree walks over a large arena.
        .data
arena:  .space %[1]d
        .text
        # node i: left -> LCG(i) scaled, right -> LCG'(i), val = i
        la   r1, arena
        li   r2, 0
ninit:  li   r3, 2654435761
        mul  r4, r2, r3
        srli r4, r4, 13
        li   r5, %[2]d
        and  r4, r4, r5
        slli r4, r4, 5
        la   r6, arena
        add  r6, r6, r4
        sd   r6, 0(r1)           # left
        li   r3, 40503
        mul  r4, r2, r3
        addi r4, r4, 9176
        srli r4, r4, 7
        and  r4, r4, r5
        slli r4, r4, 5
        la   r6, arena
        add  r6, r6, r4
        sd   r6, 8(r1)           # right
        sd   r2, 16(r1)          # val
        addi r1, r1, 32
        addi r2, r2, 1
        li   r3, %[3]d
        bne  r2, r3, ninit

bench_main:
        li   r20, %[4]d          # walks
        li   r10, 98765          # LCG
        li   r12, 0              # checksum
walkg:  li   r11, 1103515245
        mul  r10, r10, r11
        addi r10, r10, 12345
        la   r1, arena
        li   r2, 14              # depth
desc:   ld   r3, 16(r1)          # val
        add  r12, r12, r3
        srli r4, r10, 3
        srl  r4, r4, r2
        andi r4, r4, 1
        beq  r4, zero, goleft
        ld   r1, 8(r1)
        b    stepd
goleft: ld   r1, 0(r1)
stepd:  addi r2, r2, -1
        bne  r2, zero, desc
        sd   r12, 24(r1)         # leaf annotation (store)
        addi r20, r20, -1
        bne  r20, zero, walkg
        halt
`, nodes*32, nodes-1, nodes, walks)
}

// m88ksim: fetch-decode-execute interpreter over a synthetic guest.
func m88ksimSource(scale int) string {
	guestInstrs := 16 * 1024 // 128 KB guest text
	guestData := 8 * 1024    // 64 KB guest memory (words)
	passes := 3 * scale
	return fmt.Sprintf(`
# m88ksim analogue: interpreter fetch-decode-execute loop.
        .data
gtext:  .space %[1]d
gdata:  .space %[2]d
gregs:  .space 256               # 32 guest registers
        .text
        # synthesize guest program: packed word = op(2b) | rd(5b) |
        # rs(5b) | imm(16b)
        la   r1, gtext
        li   r2, %[3]d
        li   r3, 5555
tinit:  li   r4, 1103515245
        mul  r3, r3, r4
        addi r3, r3, 12345
        srli r5, r3, 12
        sd   r5, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, tinit

bench_main:
        li   r20, %[4]d
run:    la   r1, gtext           # guest pc
        li   r2, %[3]d
fetch:  ld   r3, 0(r1)           # guest instruction
        # decode
        srli r4, r3, 26
        andi r4, r4, 3           # op
        srli r5, r3, 21
        andi r5, r5, 31          # rd
        srli r6, r3, 16
        andi r6, r6, 31          # rs
        andi r7, r3, 65535       # imm
        # guest register file access
        slli r8, r5, 3
        la   r9, gregs
        add  r8, r8, r9          # &gregs[rd]
        slli r10, r6, 3
        add  r10, r10, r9        # &gregs[rs]
        ld   r11, 0(r10)
        # execute
        li   r12, 1
        beq  r4, r12, gsub
        li   r12, 2
        beq  r4, r12, gload
        li   r12, 3
        beq  r4, r12, gstore
        add  r13, r11, r7        # op 0: addi
        sd   r13, 0(r8)
        b    gnext
gsub:   sub  r13, r11, r7
        sd   r13, 0(r8)
        b    gnext
gload:  li   r14, %[5]d
        and  r15, r7, r14
        slli r15, r15, 3
        la   r16, gdata
        add  r15, r15, r16
        ld   r13, 0(r15)
        sd   r13, 0(r8)
        b    gnext
gstore: li   r14, %[5]d
        and  r15, r7, r14
        slli r15, r15, 3
        la   r16, gdata
        add  r15, r15, r16
        sd   r11, 0(r15)
gnext:  addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, fetch
        addi r20, r20, -1
        bne  r20, zero, run
        halt
`, guestInstrs*8, guestData*8, guestInstrs, passes, guestData-1)
}

// vortex: record lookups with field updates and journal appends.
func vortexSource(scale int) string {
	records := 4096 // 256 KB of 64-byte records
	journal := 8192 // words
	txns := 25000 * scale
	return fmt.Sprintf(`
# vortex analogue: database transactions over fixed-size records.
        .data
recs:   .space %[1]d
jrnl:   .space %[2]d
        .text
        # init records: rec[i].key = i, .a = 2i, .b = 3i
        la   r1, recs
        li   r2, 0
rinit:  sd   r2, 0(r1)
        slli r3, r2, 1
        sd   r3, 8(r1)
        add  r3, r3, r2
        sd   r3, 16(r1)
        addi r1, r1, 64
        addi r2, r2, 1
        li   r3, %[3]d
        bne  r2, r3, rinit

bench_main:
        li   r20, %[4]d          # transactions
        li   r10, 24680          # LCG
        li   r12, 0              # journal cursor (words)
txn:    li   r11, 1103515245
        mul  r10, r10, r11
        addi r10, r10, 12345
        srli r13, r10, 16
        li   r14, %[5]d
        and  r13, r13, r14       # record id
        slli r15, r13, 6
        la   r16, recs
        add  r16, r16, r15       # &rec
        ld   r17, 0(r16)         # key
        ld   r18, 8(r16)         # a
        ld   r19, 16(r16)        # b
        add  r18, r18, r19
        sd   r18, 8(r16)         # update a
        addi r19, r19, 1
        sd   r19, 16(r16)        # update b
        # journal append (sequential store)
        slli r15, r12, 3
        la   r16, jrnl
        add  r16, r16, r15
        sd   r17, 0(r16)
        addi r12, r12, 1
        li   r15, %[6]d
        and  r12, r12, r15       # wrap
        addi r20, r20, -1
        bne  r20, zero, txn
        halt
`, records*64, journal*8, records, txns, records-1, journal-1)
}
