// Package workload provides the SPEC95-analogue benchmark suite. The
// paper ran unmodified SPEC95 binaries under SimpleScalar; we cannot ship
// SPEC95, so each benchmark is replaced by an assembly kernel built to
// land in the same *memory-behaviour regime* as its original along the
// four axes that drive every result in the paper:
//
//   - miss rate (data-set size and reuse distance vs. the 16 KB L1),
//   - store fraction (ESP eliminates write traffic; compress's near-1:1
//     store:load ratio is why it wins biggest in Figure 7),
//   - spatial locality (line-granularity runs: stencils vs. hashing),
//   - address-dependence chains (pointer chasing creates the datathreads
//     of Table 2; interleaved array sweeps cut them).
//
// Each kernel documents which regime it reproduces. Absolute instruction
// mixes differ from SPEC95; orderings and crossovers are what transfer
// (see DESIGN.md §4).
package workload

import (
	"fmt"
	"sort"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/prog"
)

// Class tags a workload as integer or floating point, as SPEC95 does.
type Class string

// Workload classes.
const (
	Int Class = "int"
	FP  Class = "fp"
)

// Workload is one benchmark analogue.
type Workload struct {
	// Name is the SPEC95 benchmark this kernel stands in for.
	Name string
	// Class is the SPEC class of the original.
	Class Class
	// Regime describes the memory behaviour the kernel reproduces and
	// why it is faithful to the original for the paper's purposes.
	Regime string
	// Timing marks the six benchmarks used in the paper's timing
	// experiments (Figures 7-8, Table 3): go, mgrid, applu, compress,
	// turb3d, wave5.
	Timing bool
	// source generates the assembly for a scale factor (1 = the default
	// used by the experiment harnesses).
	source func(scale int) string
}

// Source returns the kernel's assembly at the given scale (values < 1 are
// treated as 1).
func (w Workload) Source(scale int) string {
	if scale < 1 {
		scale = 1
	}
	return w.source(scale)
}

// Program assembles the kernel at the given scale.
func (w Workload) Program(scale int) (*prog.Program, error) {
	p, err := asm.Assemble(w.Name, w.Source(scale))
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return p, nil
}

var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workload: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// All returns every workload sorted by name.
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Table1Order returns the fourteen benchmarks in the paper's Table 1
// column order.
func Table1Order() []Workload {
	names := []string{
		"tomcatv", "swim", "hydro2d", "mgrid", "applu", "m88ksim", "turb3d",
		"gcc", "compress", "li", "perl", "fpppp", "wave5", "vortex",
	}
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		w, ok := registry[n]
		if !ok {
			panic("workload: missing table-1 benchmark " + n)
		}
		out = append(out, w)
	}
	return out
}

// TimingSet returns the paper's six timing benchmarks in Figure 7 order:
// applu, compress, go, mgrid, turb3d, wave5.
func TimingSet() []Workload {
	names := []string{"applu", "compress", "go", "mgrid", "turb3d", "wave5"}
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		w, ok := registry[n]
		if !ok || !w.Timing {
			panic("workload: missing timing benchmark " + n)
		}
		out = append(out, w)
	}
	return out
}

// ByName looks a workload up.
func ByName(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}
