package workload

import (
	"testing"

	"github.com/wisc-arch/datascalar/internal/emu"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registry has %d workloads, want 15 (14 Table-1 + go)", len(all))
	}
	if len(Table1Order()) != 14 {
		t.Fatal("Table1Order incomplete")
	}
	timing := TimingSet()
	if len(timing) != 6 {
		t.Fatalf("timing set = %d, want 6", len(timing))
	}
	for _, w := range timing {
		if !w.Timing {
			t.Errorf("%s in timing set but not flagged", w.Name)
		}
	}
	for _, w := range all {
		if w.Regime == "" {
			t.Errorf("%s has no regime documentation", w.Name)
		}
		if w.Class != Int && w.Class != FP {
			t.Errorf("%s has class %q", w.Name, w.Class)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("compress"); !ok {
		t.Fatal("compress missing")
	}
	if _, ok := ByName("doom"); ok {
		t.Fatal("phantom workload")
	}
}

// Every kernel must assemble, run to completion within a generous bound,
// touch more memory than the 16 KB L1 (except fpppp, by design), and be
// deterministic.
func TestAllKernelsExecute(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			m, err := emu.New(p)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			n, err := m.Run(30_000_000)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !m.Halted() {
				t.Fatalf("did not halt within 30M instructions (ran %d)", n)
			}
			if n < 50_000 {
				t.Errorf("only %d dynamic instructions; too small to exercise the memory system", n)
			}
			t.Logf("%s: %d instructions, %d pages touched", w.Name, n, m.Mem().PageCount())
		})
	}
}

func TestKernelFootprints(t *testing.T) {
	for _, w := range All() {
		p, err := w.Program(1)
		if err != nil {
			t.Fatal(err)
		}
		dataPages := 0
		for _, pg := range p.Pages() {
			if prog.SegmentOf(pg*prog.PageSize) == prog.SegGlobal {
				dataPages++
			}
		}
		minPages := 4 // > 2x the 16 KB L1
		if w.Name == "fpppp" {
			minPages = 1 // deliberately cache-resident
		}
		if dataPages < minPages {
			t.Errorf("%s: only %d data pages; workload too small", w.Name, dataPages)
		}
	}
}

// compress must be store-rich (the property behind its Figure 7 win) and
// go must be store-poor.
func TestStoreFractions(t *testing.T) {
	frac := func(name string) float64 {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		p, err := w.Program(1)
		if err != nil {
			t.Fatal(err)
		}
		var loads, stores uint64
		err = trace.ForEachRef(p, 500_000, false, func(r trace.Ref) error {
			if r.Store {
				stores++
			} else {
				loads++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if loads == 0 {
			t.Fatalf("%s: no loads", name)
		}
		return float64(stores) / float64(stores+loads)
	}
	if f := frac("compress"); f < 0.4 {
		t.Errorf("compress store fraction = %.2f, want >= 0.4", f)
	}
	if f := frac("go"); f > 0.35 {
		t.Errorf("go store fraction = %.2f, want <= 0.35", f)
	}
}

// Deterministic: two runs produce identical instruction counts and final
// memory images (same page count is a cheap proxy; full equality is
// covered by the emulator's redundancy test).
func TestKernelDeterminism(t *testing.T) {
	w, _ := ByName("wave5")
	counts := make([]uint64, 2)
	for i := range counts {
		p, err := w.Program(1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := emu.New(p)
		if err != nil {
			t.Fatal(err)
		}
		n, err := m.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = n
	}
	if counts[0] != counts[1] {
		t.Fatalf("nondeterministic instruction counts: %v", counts)
	}
}

func TestScaleIncreasesWork(t *testing.T) {
	w, _ := ByName("swim")
	run := func(scale int) uint64 {
		p, err := w.Program(scale)
		if err != nil {
			t.Fatal(err)
		}
		m, err := emu.New(p)
		if err != nil {
			t.Fatal(err)
		}
		n, err := m.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if run(2) <= run(1) {
		t.Fatal("scale 2 not larger than scale 1")
	}
	// Scale < 1 clamps to 1.
	if run(0) != run(1) {
		t.Fatal("scale 0 did not clamp to 1")
	}
}

// FP workloads must execute FP memory operations; integer ones mostly
// integer memory operations.
func TestClassCharacter(t *testing.T) {
	for _, w := range All() {
		p, err := w.Program(1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := emu.New(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(200_000); err != nil {
			t.Fatal(err)
		}
		// FP kernels leave nonzero FP register state (all use f-regs).
		anyFP := false
		for i := uint8(0); i < 32; i++ {
			if m.FReg(i) != 0 {
				anyFP = true
				break
			}
		}
		if w.Class == FP && !anyFP {
			t.Errorf("%s claims FP but no FP register state", w.Name)
		}
	}
}
